package shardrpc

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"h2onas/internal/core"
	"h2onas/internal/datapipe"
	"h2onas/internal/measure"
	"h2onas/internal/metrics"
	"h2onas/internal/nn"
	"h2onas/internal/space"
	"h2onas/internal/supernet"
)

// RPCDefaults is the retry/breaker policy tuned for shard RPCs rather
// than device-farm measurements: shard steps are short and the
// coordinator blocks on the slowest shard, so timeouts are tight, retries
// few, and a flaky worker is parked quickly (and probed again after a
// cooldown) instead of stalling every step.
func RPCDefaults() measure.Policy {
	return measure.Policy{
		Timeout:          10 * time.Second,
		MaxAttempts:      2,
		BackoffBase:      2 * time.Millisecond,
		BackoffMax:       100 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  2 * time.Second,
	}
}

// Options configures the coordinator side of the TCP transport.
type Options struct {
	// Policy is the per-call retry/timeout/breaker policy; zero fields
	// take RPCDefaults.
	Policy measure.Policy
	// Clock drives breaker cooldowns and backoff sleeps; nil is wall time.
	Clock measure.Clock
	// Seed seeds the retry-backoff jitter.
	Seed uint64
	// AcceptTimeout bounds how long Bind waits for dial-out workers to
	// connect in Listen mode (default 30s).
	AcceptTimeout time.Duration
}

// rpcWorker is the coordinator's view of one remote shard worker.
type rpcWorker struct {
	shard int
	addr  string // empty for inbound (Listen-mode) connections
	conn  net.Conn
	br    *measure.Breaker
	// acked is the weight version the worker last confirmed holding;
	// 0 after (re)connect, forcing a full sync.
	acked uint64
}

// Transport drives remote shard workers over length-prefixed TCP frames,
// implementing core.ShardTransport. Each step it broadcasts the candidate
// assignment, the coordinator-drawn batch and a weight sync (none, a
// touched-rows delta, or a full state for fresh connections) to every
// worker in parallel, then copies the returned gradient bits into the
// shard's ghost replica in wire order — so the coordinator's fixed-order
// reduce consumes exactly the state an in-process shard would have
// produced, and the trajectory stays bit-identical to a single-process
// run with the same surviving shard set.
//
// Failures degrade the step, not the run: a call that times out or hits a
// dead connection is retried with jittered backoff, a worker that keeps
// failing trips its circuit breaker and is skipped (reported !Alive)
// until the cooldown expires, and dial-mode workers are redialed with a
// fresh handshake — which resets their acked version and triggers a full
// weight sync.
type Transport struct {
	opts  Options
	pol   measure.Policy
	clock measure.Clock

	workers []*rpcWorker
	lis     net.Listener // Listen mode only
	lisAddr string

	master   *supernet.Supernet
	replicas []*supernet.Supernet
	params   []*nn.Param

	backoff *measure.Backoff
	reqID   atomic.Uint64

	// version is the master's current weight version; deltaTouched (valid
	// when non-nil) describes exactly the params/rows that changed from
	// deltaFrom to version. Mutated only between RunStep calls.
	version      uint64
	deltaFrom    uint64
	deltaTouched []nn.ParamTouch

	membership string
	closed     bool

	ins instruments
}

type instruments struct {
	roundtrip  *metrics.Histogram
	broadcast  *metrics.Counter
	collect    *metrics.Counter
	fullSyncs  *metrics.Counter
	deltaSyncs *metrics.Counter
	failures   *metrics.Counter
	retries    *metrics.Counter
	redials    *metrics.Counter
	dropped    *metrics.Counter
	breakers   *metrics.Gauge
}

func newTransport(opts Options) *Transport {
	pol := opts.Policy.Defaulted(RPCDefaults())
	clock := opts.Clock
	if clock == nil {
		clock = measure.RealClock()
	}
	if opts.AcceptTimeout <= 0 {
		opts.AcceptTimeout = 30 * time.Second
	}
	return &Transport{
		opts:    opts,
		pol:     pol,
		clock:   clock,
		backoff: measure.NewBackoff(pol.BackoffBase, pol.BackoffMax, opts.Seed),
	}
}

// Dial returns a transport that connects out to one listening worker per
// shard; addrs[i] serves shard i, and len(addrs) must equal the run's
// shard count. Connections and handshakes happen at Bind, and broken
// connections are redialed between steps, so a restarted worker rejoins
// the fleet with a full weight sync.
func Dial(addrs []string, opts Options) (*Transport, error) {
	if len(addrs) == 0 {
		return nil, errors.New("shardrpc: no worker addresses")
	}
	t := newTransport(opts)
	for i, a := range addrs {
		if a == "" {
			return nil, fmt.Errorf("shardrpc: empty address for shard %d", i)
		}
		t.workers = append(t.workers, &rpcWorker{
			shard: i,
			addr:  a,
			br:    measure.NewBreaker(t.pol.BreakerThreshold, t.pol.BreakerCooldown, t.clock),
		})
	}
	t.membership = "tcp[" + strings.Join(addrs, ",") + "]"
	return t, nil
}

// Listen returns a transport that accepts dial-out workers on addr; Bind
// waits for one connection per shard and assigns shard indexes in a
// deterministic order (sorted by remote address). A worker lost in this
// mode cannot be redialed and stays dropped for the rest of the run.
func Listen(addr string, opts Options) (*Transport, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("shardrpc: listening on %s: %w", addr, err)
	}
	t := newTransport(opts)
	t.lis = lis
	t.lisAddr = addr
	return t, nil
}

// Addr reports the transport's own listen address (Listen mode only) —
// useful when addr was ":0".
func (t *Transport) Addr() string {
	if t.lis == nil {
		return ""
	}
	return t.lis.Addr().String()
}

func (t *Transport) Bind(b core.ShardBinding) error {
	t.master = b.Master
	t.replicas = b.Replicas
	t.params = b.Master.Params()
	t.bindInstruments(b.Metrics)
	shards := len(b.Replicas)
	if t.lis != nil {
		if err := t.acceptFleet(shards); err != nil {
			return err
		}
		t.membership = fmt.Sprintf("tcp-listen[%s/%d]", t.lisAddr, shards)
	} else if len(t.workers) != shards {
		return fmt.Errorf("shardrpc: %d worker addresses for %d shards", len(t.workers), shards)
	}
	for _, w := range t.workers {
		if err := t.connect(w); err != nil {
			return fmt.Errorf("shardrpc: shard %d handshake: %w", w.shard, err)
		}
	}
	t.version = 1
	return nil
}

func (t *Transport) bindInstruments(r *metrics.Registry) {
	t.ins = instruments{
		roundtrip:  r.Histogram("shardrpc_roundtrip_seconds"),
		broadcast:  r.Counter("shardrpc_broadcast_bytes_total"),
		collect:    r.Counter("shardrpc_collect_bytes_total"),
		fullSyncs:  r.Counter("shardrpc_full_syncs_total"),
		deltaSyncs: r.Counter("shardrpc_delta_syncs_total"),
		failures:   r.Counter("shardrpc_rpc_failures_total"),
		retries:    r.Counter("shardrpc_rpc_retries_total"),
		redials:    r.Counter("shardrpc_redials_total"),
		dropped:    r.Counter("shardrpc_shards_dropped_total"),
		breakers:   r.Gauge("shardrpc_breakers_open"),
	}
}

// acceptFleet collects one inbound connection per shard. Shard identity
// must not depend on connection timing, so connections are sorted by
// remote address before shard indexes are assigned.
func (t *Transport) acceptFleet(shards int) error {
	deadline := time.Now().Add(t.opts.AcceptTimeout)
	conns := make([]net.Conn, 0, shards)
	for len(conns) < shards {
		if d, ok := t.lis.(*net.TCPListener); ok {
			d.SetDeadline(deadline)
		}
		conn, err := t.lis.Accept()
		if err != nil {
			for _, c := range conns {
				c.Close()
			}
			return fmt.Errorf("shardrpc: waiting for %d workers, have %d: %w", shards, len(conns), err)
		}
		conns = append(conns, conn)
	}
	sort.Slice(conns, func(i, j int) bool {
		return conns[i].RemoteAddr().String() < conns[j].RemoteAddr().String()
	})
	t.workers = make([]*rpcWorker, shards)
	for i, c := range conns {
		t.workers[i] = &rpcWorker{
			shard: i,
			conn:  c,
			br:    measure.NewBreaker(t.pol.BreakerThreshold, t.pol.BreakerCooldown, t.clock),
		}
	}
	return nil
}

// connect establishes (or re-establishes) a worker's connection and runs
// the hello handshake. On success the worker's acked version is reset, so
// its next exec carries a full weight sync.
func (t *Transport) connect(w *rpcWorker) error {
	if w.conn == nil {
		if w.addr == "" {
			return errors.New("inbound connection lost; listen-mode workers cannot be redialed")
		}
		conn, err := net.DialTimeout("tcp", w.addr, t.pol.Timeout)
		if err != nil {
			return err
		}
		w.conn = conn
	}
	id := t.reqID.Add(1)
	w.conn.SetDeadline(time.Now().Add(t.pol.Timeout))
	h := &hello{Shard: uint32(w.shard), Space: t.master.DS.Config, Options: t.master.Options()}
	if err := writeFrame(w.conn, frameHello, id, encodeHello(h)); err != nil {
		t.dropConn(w)
		return err
	}
	typ, gotID, payload, err := readFrame(w.conn)
	if err != nil {
		t.dropConn(w)
		return err
	}
	if gotID != id {
		t.dropConn(w)
		return fmt.Errorf("handshake response for request %d, expected %d", gotID, id)
	}
	if typ == frameError {
		msg, _ := decodeError(payload)
		t.dropConn(w)
		return fmt.Errorf("worker rejected handshake: %s", msg)
	}
	if typ != frameHelloAck {
		t.dropConn(w)
		return fmt.Errorf("unexpected handshake frame type %d", typ)
	}
	ack, err := decodeHelloAck(payload)
	if err != nil {
		t.dropConn(w)
		return err
	}
	if int(ack.NumParams) != len(t.params) {
		t.dropConn(w)
		return fmt.Errorf("worker built %d params, coordinator has %d — mismatched model", ack.NumParams, len(t.params))
	}
	w.acked = 0
	return nil
}

func (t *Transport) dropConn(w *rpcWorker) {
	if w.conn != nil {
		w.conn.Close()
		w.conn = nil
	}
}

func (t *Transport) RunStep(step int, assignments []space.Assignment, batches []*datapipe.Batch, outcomes []core.ShardOutcome) {
	// The delta is materialized once per step and shared read-only by
	// every worker goroutine that syncs from version-1.
	delta := t.buildDelta()
	var wg sync.WaitGroup
	for i := range t.workers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t.runShard(step, t.workers[i], assignments[i], batches[i], delta, &outcomes[i])
		}(i)
	}
	wg.Wait()
	open := 0
	for _, w := range t.workers {
		if w.br.State() != measure.BreakerClosed {
			open++
		}
	}
	t.ins.breakers.Set(float64(open))
}

// buildDelta gathers the current master values for the rows touched by
// the last weight update. Values are read live from the master — safe
// because the next update (ClipStep) cannot start until every RunStep
// call has returned.
func (t *Transport) buildDelta() []tensorPatch {
	if t.deltaTouched == nil {
		return nil
	}
	patches := make([]tensorPatch, 0, len(t.deltaTouched))
	for _, tc := range t.deltaTouched {
		v := t.params[tc.Index].Value
		if tc.Rows == nil {
			patches = append(patches, tensorPatch{Param: tc.Index, Values: v.Data})
			continue
		}
		cols := v.Cols
		vals := make([]float64, len(tc.Rows)*cols)
		for k, r := range tc.Rows {
			copy(vals[k*cols:(k+1)*cols], v.Data[int(r)*cols:(int(r)+1)*cols])
		}
		patches = append(patches, tensorPatch{Param: tc.Index, Rows: tc.Rows, Values: vals})
	}
	return patches
}

// runShard drives one shard through the step: retry with jittered backoff
// under the policy, redial dead dial-mode connections, and on exhaustion
// leave the outcome !Alive — the shard is dropped from this step's reduce.
func (t *Transport) runShard(step int, w *rpcWorker, a space.Assignment, b *datapipe.Batch, delta []tensorPatch, out *core.ShardOutcome) {
	if !w.br.Allow() {
		t.ins.dropped.Inc()
		return
	}
	for attempt := 0; attempt < t.pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			t.ins.retries.Inc()
			t.clock.Sleep(t.backoff.Delay(attempt - 1))
		}
		if w.conn == nil {
			t.ins.redials.Inc()
			if err := t.connect(w); err != nil {
				t.ins.failures.Inc()
				w.br.Failure(false)
				continue
			}
		}
		res, fatal, err := t.call(w, step, a, b, delta)
		if err != nil {
			log.Printf("shardrpc: shard %d step %d attempt %d: %v", w.shard, step, attempt, err)
			t.ins.failures.Inc()
			w.br.Failure(false)
			if fatal {
				t.dropConn(w)
			}
			continue
		}
		if err := applyGrads(t.replicas[w.shard], res.Grads); err != nil {
			// The reduce would consume a half-applied gradient; treat the
			// step as lost for this shard and force a resync.
			t.ins.failures.Inc()
			w.br.Failure(false)
			t.dropConn(w)
			continue
		}
		w.acked = res.Version
		w.br.Success()
		out.Alive = true
		out.Quality = core.QualityFromLoss(res.Loss)
		return
	}
	t.ins.dropped.Inc()
}

// call performs one exec round trip. fatal reports whether the connection
// is desynchronized and must be dropped (I/O or protocol errors); a clean
// worker-side error frame leaves the connection usable.
func (t *Transport) call(w *rpcWorker, step int, a space.Assignment, b *datapipe.Batch, delta []tensorPatch) (res *execResult, fatal bool, err error) {
	req := &execReq{
		Step:        uint64(step),
		Assignment:  a,
		NumExamples: b.Dense.Rows,
		NumDense:    b.Dense.Cols,
		Dense:       b.Dense.Data,
		Labels:      b.Labels.Data,
		Sparse:      b.Sparse,
	}
	switch {
	case w.acked == t.version:
		req.WeightsMode = weightsNone
		req.ToVersion = t.version
	case w.acked == t.deltaFrom && delta != nil:
		req.WeightsMode = weightsDelta
		req.FromVersion = t.deltaFrom
		req.ToVersion = t.version
		req.Delta = delta
		t.ins.deltaSyncs.Inc()
	default:
		req.WeightsMode = weightsFull
		req.ToVersion = t.version
		req.Full = make([][]float64, len(t.params))
		for i, p := range t.params {
			req.Full[i] = p.Value.Data
		}
		t.ins.fullSyncs.Inc()
	}
	payload := encodeExec(req)
	id := t.reqID.Add(1)
	w.conn.SetDeadline(time.Now().Add(t.pol.Timeout))
	span := t.ins.roundtrip.Start()
	defer span.End()
	if err := writeFrame(w.conn, frameExec, id, payload); err != nil {
		return nil, true, err
	}
	t.ins.broadcast.Add(int64(headerLen + len(payload)))
	typ, gotID, resp, err := readFrame(w.conn)
	if err != nil {
		return nil, true, err
	}
	t.ins.collect.Add(int64(headerLen + len(resp)))
	if gotID != id {
		return nil, true, fmt.Errorf("response for request %d, expected %d", gotID, id)
	}
	switch typ {
	case frameError:
		msg, derr := decodeError(resp)
		if derr != nil {
			return nil, true, derr
		}
		return nil, false, fmt.Errorf("worker error: %s", msg)
	case frameExecResult:
		r, derr := decodeExecResult(resp)
		if derr != nil {
			return nil, true, derr
		}
		if r.Step != uint64(step) {
			return nil, true, fmt.Errorf("result for step %d, expected %d", r.Step, step)
		}
		return r, false, nil
	default:
		return nil, true, fmt.Errorf("unexpected frame type %d", typ)
	}
}

// applyGrads replays a shard's wire gradients into its ghost replica so
// the spine reduce sees exactly the state an in-process Backward would
// have left: row patches are copied and marked in first-write order, and
// a dense gradient landing on a row-sparse param marks every row (the
// replica's row bookkeeping would otherwise hide it from the tracked
// reduce path).
func applyGrads(rep *supernet.Supernet, patches []tensorPatch) error {
	params := rep.Params()
	for _, pt := range patches {
		if pt.Param < 0 || pt.Param >= len(params) {
			return fmt.Errorf("gradient for param %d, model has %d", pt.Param, len(params))
		}
		p := params[pt.Param]
		g := p.Grad
		if pt.Rows == nil {
			if len(pt.Values) != len(g.Data) {
				return fmt.Errorf("dense gradient for param %d has %d values, tensor has %d", pt.Param, len(pt.Values), len(g.Data))
			}
			copy(g.Data, pt.Values)
			p.Dirty = true
			if p.RowSparse {
				for r := 0; r < g.Rows; r++ {
					p.MarkRow(r)
				}
			}
			continue
		}
		cols := g.Cols
		if len(pt.Values) != len(pt.Rows)*cols {
			return fmt.Errorf("row gradient for param %d has %d values for %d rows of %d cols", pt.Param, len(pt.Values), len(pt.Rows), cols)
		}
		for k, r := range pt.Rows {
			if r < 0 || int(r) >= g.Rows {
				return fmt.Errorf("row gradient for param %d touches row %d of %d", pt.Param, r, g.Rows)
			}
			copy(g.Data[int(r)*cols:(int(r)+1)*cols], pt.Values[k*cols:(k+1)*cols])
			p.MarkRow(int(r))
		}
		p.Dirty = true
	}
	return nil
}

func (t *Transport) WantsWeightSync() bool { return true }

// PushWeights records the step's touched params as the delta from the
// previous version. Indexes and rows are copied (the spine reuses its
// buffers); values are deliberately not — they are read from the master
// at the next RunStep, before any later update can overwrite them.
func (t *Transport) PushWeights(touched []nn.ParamTouch) error {
	t.deltaFrom = t.version
	t.version++
	t.deltaTouched = make([]nn.ParamTouch, len(touched))
	for i, tc := range touched {
		cp := nn.ParamTouch{Index: tc.Index}
		if tc.Rows != nil {
			cp.Rows = append([]int32(nil), tc.Rows...)
		}
		t.deltaTouched[i] = cp
	}
	return nil
}

func (t *Transport) Membership() string { return t.membership }

func (t *Transport) Close() error {
	if t.closed {
		return nil
	}
	t.closed = true
	for _, w := range t.workers {
		t.dropConn(w)
	}
	if t.lis != nil {
		t.lis.Close()
	}
	return nil
}
