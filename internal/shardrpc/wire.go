// Package shardrpc is the TCP transport behind core.ShardTransport: a
// coordinator drives a fleet of remote shard workers over length-prefixed
// binary frames on stdlib net connections, reproducing the multi-node
// operating mode of the paper's measurement and search fleets. The
// protocol is deliberately minimal — one synchronous request per worker
// per step — because the search step itself is the unit of coordination:
// the coordinator samples candidates and draws batches, broadcasts them
// (plus the latest weight delta) to every worker, and collects per-shard
// losses and gradients for the fixed-order spine reduce. Every float64
// crosses the wire as its exact bit pattern, so a multi-node run is
// bit-identical to the in-process transport on the same seed and
// surviving shard set.
package shardrpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"h2onas/internal/space"
	"h2onas/internal/supernet"
)

// Wire format (little-endian), one frame per message:
//
//	magic   [8]byte  "H2ONASRP"
//	version uint32   protocol version (currently 1)
//	type    uint8    frame type
//	reqID   uint64   request identifier, echoed by responses
//	length  uint64   payload byte count
//	crc32   uint32   IEEE CRC of the payload
//	payload [length]byte
//
// Same shape and discipline as the checkpoint codec: the checksum
// rejects torn or corrupted frames before anything is trusted, and the
// payload decoder bounds every declared length against the bytes
// present, so garbage input can never drive large allocations or panics.

const (
	magic = "H2ONASRP"
	// Version is the current protocol version. A peer speaking a newer
	// version is rejected at the handshake.
	Version = 1

	headerLen = 8 + 4 + 1 + 8 + 8 + 4

	// maxPayload rejects absurd declared frame sizes (1 GiB — far above
	// any real exec frame at laptop scale).
	maxPayload = 1 << 30
)

// Frame types.
const (
	frameHello      = 1 // coordinator → worker: run identity + model config
	frameHelloAck   = 2 // worker → coordinator: structural confirmation
	frameExec       = 3 // coordinator → worker: one shard step
	frameExecResult = 4 // worker → coordinator: loss + gradients
	frameError      = 5 // worker → coordinator: request failed
)

// Weight-synchronization modes carried by an exec frame.
const (
	weightsNone  = 0 // worker is current; no weight payload
	weightsFull  = 1 // complete parameter state
	weightsDelta = 2 // only the params/rows the last step touched
)

var (
	errBadMagic = errors.New("shardrpc: bad frame magic")
	errChecksum = errors.New("shardrpc: frame checksum mismatch")
)

// writeFrame sends one frame. The payload is framed with type, request
// id, length and checksum; the caller owns deadlines on w.
func writeFrame(w io.Writer, typ byte, reqID uint64, payload []byte) error {
	var hdr [headerLen]byte
	copy(hdr[:8], magic)
	binary.LittleEndian.PutUint32(hdr[8:12], Version)
	hdr[12] = typ
	binary.LittleEndian.PutUint64(hdr[13:21], reqID)
	binary.LittleEndian.PutUint64(hdr[21:29], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[29:33], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads and validates one frame. The caller owns deadlines.
func readFrame(r io.Reader) (typ byte, reqID uint64, payload []byte, err error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	if string(hdr[:8]) != magic {
		return 0, 0, nil, errBadMagic
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != Version {
		return 0, 0, nil, fmt.Errorf("shardrpc: protocol version %d, this build speaks %d", v, Version)
	}
	typ = hdr[12]
	reqID = binary.LittleEndian.Uint64(hdr[13:21])
	length := binary.LittleEndian.Uint64(hdr[21:29])
	if length > maxPayload {
		return 0, 0, nil, fmt.Errorf("shardrpc: implausible frame payload size %d", length)
	}
	payload = make([]byte, int(length))
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, err
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[29:33]) {
		return 0, 0, nil, errChecksum
	}
	return typ, reqID, payload, nil
}

// hello is the coordinator's handshake: everything a worker needs to
// build a structurally identical replica of the super-network.
type hello struct {
	Shard   uint32
	Space   space.DLRMConfig
	Options supernet.Options
}

// helloAck confirms the worker built its replica; the parameter count is
// the structural checksum the coordinator verifies against its master.
type helloAck struct {
	NumParams uint32
}

// tensorPatch is one parameter's share of a weight delta or gradient
// payload. Rows nil means the values cover the whole tensor densely;
// otherwise Values holds len(Rows) rows of the parameter's column width,
// in Rows order — which for gradients is the first-write order the
// deterministic reduce depends on.
type tensorPatch struct {
	Param  int
	Rows   []int32
	Values []float64
}

// execReq is one shard step: the candidate, the batch, and whatever
// weight synchronization this worker needs to be exact before computing.
type execReq struct {
	Step       uint64
	Assignment space.Assignment

	WeightsMode byte
	FromVersion uint64 // delta only: version the delta applies on top of
	ToVersion   uint64 // version the worker holds after applying
	Full        [][]float64
	Delta       []tensorPatch

	NumExamples int
	NumDense    int
	Dense       []float64 // NumExamples×NumDense, row-major
	Labels      []float64 // NumExamples
	Sparse      [][][]int // [table][example][bag ids]
}

// execResult is the worker's answer: the exact loss bits and the exact
// gradient bits of its replica, in param order.
type execResult struct {
	Step    uint64
	Version uint64 // weight version the worker now holds
	Loss    float64
	Grads   []tensorPatch
}

func encodeHello(h *hello) []byte {
	var e enc
	e.u32(h.Shard)
	c := h.Space
	e.str(c.Name)
	e.u32(uint32(c.NumTables))
	e.u32(uint32(c.BaseEmbWidth))
	e.u32(uint32(c.EmbWidthStep))
	e.u32(uint32(c.BaseVocab))
	e.u32(uint32(c.BagSize))
	e.u32(uint32(c.NumDense))
	e.ints(c.BottomWidths)
	e.ints(c.TopWidths)
	e.u32(uint32(c.MLPWidthStep))
	e.u32(uint32(c.Batch))
	e.u32(uint32(c.Chips))
	e.u32(uint32(c.DType))
	e.u32(uint32(h.Options.VocabSharing))
	return e.buf
}

func decodeHello(payload []byte) (*hello, error) {
	d := &dec{buf: payload}
	h := &hello{}
	h.Shard = d.u32()
	h.Space.Name = d.str()
	h.Space.NumTables = int(d.u32())
	h.Space.BaseEmbWidth = int(d.u32())
	h.Space.EmbWidthStep = int(d.u32())
	h.Space.BaseVocab = int(d.u32())
	h.Space.BagSize = int(d.u32())
	h.Space.NumDense = int(d.u32())
	h.Space.BottomWidths = d.ints()
	h.Space.TopWidths = d.ints()
	h.Space.MLPWidthStep = int(d.u32())
	h.Space.Batch = int(d.u32())
	h.Space.Chips = int(d.u32())
	h.Space.DType = int(d.u32())
	h.Options.VocabSharing = supernet.VocabSharing(d.u32())
	return h, d.finish("hello")
}

func encodeHelloAck(a *helloAck) []byte {
	var e enc
	e.u32(a.NumParams)
	return e.buf
}

func decodeHelloAck(payload []byte) (*helloAck, error) {
	d := &dec{buf: payload}
	a := &helloAck{NumParams: d.u32()}
	return a, d.finish("hello ack")
}

func encodeExec(r *execReq) []byte {
	var e enc
	e.u64(r.Step)
	e.u32(uint32(len(r.Assignment)))
	for _, v := range r.Assignment {
		e.u32(uint32(v))
	}
	e.buf = append(e.buf, r.WeightsMode)
	e.u64(r.FromVersion)
	e.u64(r.ToVersion)
	switch r.WeightsMode {
	case weightsFull:
		e.u32(uint32(len(r.Full)))
		for _, t := range r.Full {
			e.f64s(t)
		}
	case weightsDelta:
		e.patches(r.Delta)
	}
	e.u32(uint32(r.NumExamples))
	e.u32(uint32(r.NumDense))
	e.f64s(r.Dense)
	e.f64s(r.Labels)
	e.u32(uint32(len(r.Sparse)))
	for _, table := range r.Sparse {
		e.u32(uint32(len(table)))
		for _, bag := range table {
			e.ints(bag)
		}
	}
	return e.buf
}

func decodeExec(payload []byte) (*execReq, error) {
	d := &dec{buf: payload}
	r := &execReq{}
	r.Step = d.u64()
	n := int(d.u32())
	if d.checkCount(n, 4, "assignment") {
		r.Assignment = make(space.Assignment, n)
		for i := range r.Assignment {
			r.Assignment[i] = int(d.u32())
		}
	}
	r.WeightsMode = d.u8()
	r.FromVersion = d.u64()
	r.ToVersion = d.u64()
	switch r.WeightsMode {
	case weightsNone:
	case weightsFull:
		n := int(d.u32())
		if d.checkCount(n, 4, "weight tensors") {
			r.Full = make([][]float64, n)
			for i := range r.Full {
				r.Full[i] = d.f64s()
			}
		}
	case weightsDelta:
		r.Delta = d.patches()
	default:
		d.fail("unknown weights mode %d", r.WeightsMode)
	}
	r.NumExamples = int(d.u32())
	r.NumDense = int(d.u32())
	r.Dense = d.f64s()
	r.Labels = d.f64s()
	nt := int(d.u32())
	if d.checkCount(nt, 4, "sparse tables") {
		r.Sparse = make([][][]int, nt)
		for t := range r.Sparse {
			ne := int(d.u32())
			if !d.checkCount(ne, 4, "sparse examples") {
				break
			}
			r.Sparse[t] = make([][]int, ne)
			for i := range r.Sparse[t] {
				r.Sparse[t][i] = d.ints()
			}
		}
	}
	return r, d.finish("exec")
}

func encodeExecResult(r *execResult) []byte {
	var e enc
	e.u64(r.Step)
	e.u64(r.Version)
	e.f64(r.Loss)
	e.patches(r.Grads)
	return e.buf
}

func decodeExecResult(payload []byte) (*execResult, error) {
	d := &dec{buf: payload}
	r := &execResult{}
	r.Step = d.u64()
	r.Version = d.u64()
	r.Loss = d.f64()
	r.Grads = d.patches()
	return r, d.finish("exec result")
}

func encodeError(msg string) []byte {
	var e enc
	e.str(msg)
	return e.buf
}

func decodeError(payload []byte) (string, error) {
	d := &dec{buf: payload}
	msg := d.str()
	return msg, d.finish("error")
}

// enc appends little-endian primitives to a buffer; mirror of dec.
type enc struct{ buf []byte }

func (e *enc) u8(v byte)    { e.buf = append(e.buf, v) }
func (e *enc) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *enc) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *enc) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *enc) f64s(v []float64) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.f64(x)
	}
}
func (e *enc) ints(v []int) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.u32(uint32(x))
	}
}
func (e *enc) i32s(v []int32) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.u32(uint32(x))
	}
}
func (e *enc) patches(ps []tensorPatch) {
	e.u32(uint32(len(ps)))
	for _, p := range ps {
		e.u32(uint32(p.Param))
		if p.Rows == nil {
			e.u8(0)
		} else {
			e.u8(1)
			e.i32s(p.Rows)
		}
		e.f64s(p.Values)
	}
}

// dec reads the payload with sticky errors and hard bounds, exactly the
// checkpoint decoder's discipline: every declared count is validated
// against the remaining bytes before allocation.
type dec struct {
	buf []byte
	off int
	err error
}

func (d *dec) remaining() int { return len(d.buf) - d.off }

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

// checkCount reports whether n items of at least perItem bytes each can
// still be present, failing the decode otherwise.
func (d *dec) checkCount(n, perItem int, what string) bool {
	if d.err != nil {
		return false
	}
	if n < 0 || n > d.remaining()/perItem {
		d.fail("%s count %d exceeds remaining payload", what, n)
		return false
	}
	return true
}

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > d.remaining() {
		d.fail("need %d bytes, %d remain", n, d.remaining())
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *dec) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *dec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *dec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *dec) str() string {
	n := int(d.u32())
	return string(d.take(n))
}

func (d *dec) f64s() []float64 {
	n := int(d.u32())
	if !d.checkCount(n, 8, "vector") {
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = d.f64()
	}
	return v
}

func (d *dec) ints() []int {
	n := int(d.u32())
	if !d.checkCount(n, 4, "int vector") {
		return nil
	}
	v := make([]int, n)
	for i := range v {
		v[i] = int(d.u32())
	}
	return v
}

func (d *dec) i32s() []int32 {
	n := int(d.u32())
	if !d.checkCount(n, 4, "row vector") {
		return nil
	}
	v := make([]int32, n)
	for i := range v {
		v[i] = int32(d.u32())
	}
	return v
}

func (d *dec) patches() []tensorPatch {
	n := int(d.u32())
	if !d.checkCount(n, 6, "patch") {
		return nil
	}
	ps := make([]tensorPatch, n)
	for i := range ps {
		ps[i].Param = int(d.u32())
		switch d.u8() {
		case 0:
		case 1:
			ps[i].Rows = d.i32s()
			if ps[i].Rows == nil && d.err == nil {
				// A rows-kind patch with zero rows keeps a non-nil marker
				// so the decoder round-trips the dense/rows distinction.
				ps[i].Rows = []int32{}
			}
		default:
			d.fail("invalid patch kind")
		}
		ps[i].Values = d.f64s()
		if d.err != nil {
			return nil
		}
	}
	return ps
}

// finish validates that the payload was consumed exactly.
func (d *dec) finish(what string) error {
	if d.err != nil {
		return fmt.Errorf("shardrpc: corrupt %s payload: %w", what, d.err)
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("shardrpc: corrupt %s payload: %d unread bytes", what, len(d.buf)-d.off)
	}
	return nil
}
