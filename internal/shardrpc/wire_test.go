package shardrpc

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"

	"h2onas/internal/space"
	"h2onas/internal/supernet"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte{1, 2, 3, 4, 5}
	if err := writeFrame(&buf, frameExec, 42, payload); err != nil {
		t.Fatal(err)
	}
	typ, id, got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != frameExec || id != 42 || !bytes.Equal(got, payload) {
		t.Fatalf("frame round trip: type %d id %d payload %v", typ, id, got)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frameHelloAck, 7, nil); err != nil {
		t.Fatal(err)
	}
	typ, id, got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != frameHelloAck || id != 7 || len(got) != 0 {
		t.Fatalf("empty frame: type %d id %d payload %v", typ, id, got)
	}
}

func TestFrameRejectsCorruption(t *testing.T) {
	frame := func() []byte {
		var buf bytes.Buffer
		writeFrame(&buf, frameExec, 1, []byte("hello shard"))
		return buf.Bytes()
	}

	t.Run("bad magic", func(t *testing.T) {
		b := frame()
		b[0] ^= 0xFF
		if _, _, _, err := readFrame(bytes.NewReader(b)); !errors.Is(err, errBadMagic) {
			t.Fatalf("err = %v, want bad magic", err)
		}
	})
	t.Run("future version", func(t *testing.T) {
		b := frame()
		b[8] = 99
		_, _, _, err := readFrame(bytes.NewReader(b))
		if err == nil || !strings.Contains(err.Error(), "protocol version") {
			t.Fatalf("err = %v, want version rejection", err)
		}
	})
	t.Run("flipped payload bit", func(t *testing.T) {
		b := frame()
		b[headerLen+2] ^= 0x01
		if _, _, _, err := readFrame(bytes.NewReader(b)); !errors.Is(err, errChecksum) {
			t.Fatalf("err = %v, want checksum mismatch", err)
		}
	})
	t.Run("truncated payload", func(t *testing.T) {
		b := frame()
		if _, _, _, err := readFrame(bytes.NewReader(b[:len(b)-3])); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("err = %v, want unexpected EOF", err)
		}
	})
	t.Run("implausible length", func(t *testing.T) {
		b := frame()
		// Declared length far beyond maxPayload must be rejected before
		// any allocation.
		for i := 21; i < 29; i++ {
			b[i] = 0xFF
		}
		_, _, _, err := readFrame(bytes.NewReader(b))
		if err == nil || !strings.Contains(err.Error(), "implausible") {
			t.Fatalf("err = %v, want size rejection", err)
		}
	})
}

func TestHelloRoundTrip(t *testing.T) {
	in := &hello{
		Shard:   3,
		Space:   space.SmallDLRMConfig(),
		Options: supernet.Options{VocabSharing: supernet.FineVocab},
	}
	out, err := decodeHello(encodeHello(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("hello round trip:\n in  %+v\n out %+v", in, out)
	}
}

func TestExecRoundTrip(t *testing.T) {
	cases := []*execReq{
		{
			Step: 9, Assignment: space.Assignment{1, 0, 2},
			WeightsMode: weightsNone, ToVersion: 4,
			NumExamples: 2, NumDense: 3,
			Dense:  []float64{1, 2, 3, 4, 5, math.Inf(1)},
			Labels: []float64{0, 1},
			Sparse: [][][]int{{{1, 2}, {3}}, {{}, {4, 5, 6}}},
		},
		{
			Step: 0, Assignment: space.Assignment{0},
			WeightsMode: weightsFull, ToVersion: 1,
			Full:        [][]float64{{1.5, -2.5}, {math.SmallestNonzeroFloat64}},
			NumExamples: 1, NumDense: 1,
			Dense: []float64{0.25}, Labels: []float64{1},
			Sparse: [][][]int{{{7}}},
		},
		{
			Step: 17, Assignment: space.Assignment{2, 2},
			WeightsMode: weightsDelta, FromVersion: 6, ToVersion: 7,
			Delta: []tensorPatch{
				{Param: 0, Rows: []int32{5, 1, 9}, Values: []float64{1, 2, 3, 4, 5, 6}},
				{Param: 3, Values: []float64{-0.5}},
				{Param: 4, Rows: []int32{}, Values: []float64{}},
			},
			NumExamples: 1, NumDense: 2,
			Dense: []float64{1, 2}, Labels: []float64{0},
			Sparse: [][][]int{{{1}}},
		},
	}
	for i, in := range cases {
		out, err := decodeExec(encodeExec(in))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("case %d round trip:\n in  %+v\n out %+v", i, in, out)
		}
	}
}

func TestExecResultRoundTripPreservesBits(t *testing.T) {
	// NaN payloads can't survive reflect.DeepEqual, but their bits must
	// survive the wire: compare bit patterns explicitly.
	in := &execResult{
		Step: 3, Version: 11,
		Loss: math.Float64frombits(0x7FF8000000000001), // a specific NaN
		Grads: []tensorPatch{
			{Param: 2, Rows: []int32{8, 0}, Values: []float64{math.Copysign(0, -1), 1e-308, -1e308, math.NaN()}},
			{Param: 5, Values: []float64{math.Pi}},
		},
	}
	out, err := decodeExecResult(encodeExecResult(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Step != in.Step || out.Version != in.Version {
		t.Fatalf("header fields: %+v", out)
	}
	if math.Float64bits(out.Loss) != math.Float64bits(in.Loss) {
		t.Fatalf("loss bits %x, want %x", math.Float64bits(out.Loss), math.Float64bits(in.Loss))
	}
	if len(out.Grads) != len(in.Grads) {
		t.Fatalf("grads %d, want %d", len(out.Grads), len(in.Grads))
	}
	for g := range in.Grads {
		if out.Grads[g].Param != in.Grads[g].Param || !reflect.DeepEqual(out.Grads[g].Rows, in.Grads[g].Rows) {
			t.Fatalf("grad %d structure: %+v", g, out.Grads[g])
		}
		for v := range in.Grads[g].Values {
			if math.Float64bits(out.Grads[g].Values[v]) != math.Float64bits(in.Grads[g].Values[v]) {
				t.Fatalf("grad %d value %d bits differ", g, v)
			}
		}
	}
}

func TestErrorRoundTrip(t *testing.T) {
	msg, err := decodeError(encodeError("shard step panicked: boom"))
	if err != nil {
		t.Fatal(err)
	}
	if msg != "shard step panicked: boom" {
		t.Fatalf("msg = %q", msg)
	}
}

// TestPayloadDecodersRejectGarbage fuzzes each decoder with truncations
// of a valid payload: every prefix must return an error, never panic or
// hang — the bounded-decoder discipline.
func TestPayloadDecodersRejectGarbage(t *testing.T) {
	valid := encodeExec(&execReq{
		Step: 1, Assignment: space.Assignment{1, 2},
		WeightsMode: weightsDelta, FromVersion: 1, ToVersion: 2,
		Delta:       []tensorPatch{{Param: 0, Rows: []int32{1}, Values: []float64{1, 2}}},
		NumExamples: 1, NumDense: 2,
		Dense: []float64{1, 2}, Labels: []float64{1},
		Sparse: [][][]int{{{3, 4}}},
	})
	for n := 0; n < len(valid); n++ {
		if _, err := decodeExec(valid[:n]); err == nil {
			t.Fatalf("decodeExec accepted a %d-byte truncation of a %d-byte payload", n, len(valid))
		}
	}
	if _, err := decodeHello(valid); err == nil {
		t.Fatal("decodeHello accepted an exec payload")
	}
}
