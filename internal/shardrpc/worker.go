package shardrpc

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"h2onas/internal/datapipe"
	"h2onas/internal/nn"
	"h2onas/internal/space"
	"h2onas/internal/supernet"
	"h2onas/internal/tensor"
)

// Worker executes shard steps on behalf of a remote coordinator: it
// receives the model configuration in the handshake, builds a
// structurally identical super-network replica, and then answers one
// synchronous exec request at a time — apply the weight sync, run the
// forward/backward on the wire-delivered batch, return the exact loss
// and gradient bits. The computation is single-goroutine and consumes no
// worker-local randomness, so its results are a pure function of the
// request — the property the coordinator's bit-determinism rests on.
//
// A worker serves coordinator sessions sequentially or concurrently (one
// super-network per connection) and drains gracefully: Drain lets the
// in-flight request complete and its response flush before connections
// close, so a politely stopped worker never corrupts a step.
type Worker struct {
	mu       sync.Mutex
	lis      net.Listener
	conns    map[net.Conn]struct{}
	draining bool

	wg sync.WaitGroup
}

// NewWorker returns an idle worker.
func NewWorker() *Worker {
	return &Worker{conns: make(map[net.Conn]struct{})}
}

// Serve accepts coordinator connections on lis until Drain (or a listener
// error). Each connection is one coordinator session.
func (w *Worker) Serve(lis net.Listener) error {
	w.mu.Lock()
	if w.draining {
		w.mu.Unlock()
		return errors.New("shardrpc: worker is draining")
	}
	w.lis = lis
	w.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			if w.isDraining() {
				w.wg.Wait()
				return nil
			}
			return err
		}
		w.track(conn)
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			w.session(conn)
		}()
	}
}

// DialAndServe connects out to a listening coordinator and serves that
// single session until the coordinator closes it or the worker drains.
func (w *Worker) DialAndServe(coordinator string, timeout time.Duration) error {
	conn, err := net.DialTimeout("tcp", coordinator, timeout)
	if err != nil {
		return fmt.Errorf("shardrpc: dialing coordinator %s: %w", coordinator, err)
	}
	w.track(conn)
	w.wg.Add(1)
	defer w.wg.Done()
	w.session(conn)
	return nil
}

// Drain stops accepting work: the listener closes, idle connections are
// unblocked, and in-flight requests run to completion (their responses
// are written before the connection closes). Safe to call more than once.
func (w *Worker) Drain() {
	w.mu.Lock()
	if w.draining {
		w.mu.Unlock()
		return
	}
	w.draining = true
	lis := w.lis
	conns := make([]net.Conn, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	w.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	// A past read deadline unblocks sessions parked in readFrame without
	// cutting a session that is mid-compute: its response write still
	// proceeds, and the session exits at its next read.
	for _, c := range conns {
		c.SetReadDeadline(time.Now())
	}
}

// Wait blocks until every session has finished.
func (w *Worker) Wait() { w.wg.Wait() }

func (w *Worker) isDraining() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.draining
}

func (w *Worker) track(conn net.Conn) {
	w.mu.Lock()
	w.conns[conn] = struct{}{}
	w.mu.Unlock()
}

func (w *Worker) untrack(conn net.Conn) {
	w.mu.Lock()
	delete(w.conns, conn)
	w.mu.Unlock()
}

// session speaks one coordinator connection: handshake, then a
// request/response loop until the peer disconnects or the worker drains.
func (w *Worker) session(conn net.Conn) {
	defer conn.Close()
	defer w.untrack(conn)
	s, err := w.handshake(conn)
	if err != nil {
		log.Printf("shardrpc: worker handshake with %s failed: %v", conn.RemoteAddr(), err)
		return
	}
	log.Printf("shardrpc: worker serving shard %d for %s (%d params)", s.shard, conn.RemoteAddr(), len(s.params))
	for {
		typ, reqID, payload, err := readFrame(conn)
		if err != nil {
			if err != io.EOF && !w.isDraining() {
				log.Printf("shardrpc: worker session with %s ended: %v", conn.RemoteAddr(), err)
			}
			return
		}
		if typ != frameExec {
			log.Printf("shardrpc: worker got unexpected frame type %d", typ)
			return
		}
		resp, herr := s.handleExec(payload)
		if herr != nil {
			err = writeFrame(conn, frameError, reqID, encodeError(herr.Error()))
		} else {
			err = writeFrame(conn, frameExecResult, reqID, resp)
		}
		if err != nil {
			return
		}
		if w.isDraining() {
			return
		}
	}
}

// workerSession is the per-connection model state.
type workerSession struct {
	shard   uint32
	ds      *space.DLRMSpace
	net     *supernet.Supernet
	arena   *tensor.Arena
	params  []*nn.Param
	version uint64 // weight version currently loaded; 0 = uninitialized
}

func (w *Worker) handshake(conn net.Conn) (*workerSession, error) {
	typ, reqID, payload, err := readFrame(conn)
	if err != nil {
		return nil, err
	}
	if typ != frameHello {
		return nil, fmt.Errorf("expected hello frame, got type %d", typ)
	}
	h, err := decodeHello(payload)
	if err != nil {
		return nil, err
	}
	s, err := newSession(h)
	if err != nil {
		werr := writeFrame(conn, frameError, reqID, encodeError(err.Error()))
		if werr != nil {
			return nil, werr
		}
		return nil, err
	}
	if err := writeFrame(conn, frameHelloAck, reqID, encodeHelloAck(&helloAck{NumParams: uint32(len(s.params))})); err != nil {
		return nil, err
	}
	return s, nil
}

func newSession(h *hello) (s *workerSession, err error) {
	// Space/super-network construction panics on malformed configs; a
	// remote peer's bad handshake must become an error frame, not a dead
	// worker.
	defer func() {
		if r := recover(); r != nil {
			s, err = nil, fmt.Errorf("building model from handshake: %v", r)
		}
	}()
	ds := space.NewDLRMSpace(h.Space)
	// Weights are owned by the coordinator and arrive via sync, so the
	// replica is built weightless (ZeroRNG) like the coordinator's own
	// ghost replicas — but unlike those, it does not share the master's
	// storage, so the shape-only placeholders must be given real backing
	// for the first full sync to land in.
	net := supernet.NewWithOptions(ds, tensor.ZeroRNG(), h.Options)
	for _, p := range net.Params() {
		if len(p.Value.Data) == 0 {
			p.Value = tensor.New(p.Value.Rows, p.Value.Cols)
		}
	}
	arena := tensor.NewArena()
	net.SetArena(arena)
	return &workerSession{
		shard:  h.Shard,
		ds:     ds,
		net:    net,
		arena:  arena,
		params: net.Params(),
	}, nil
}

// handleExec runs one shard step and returns the encoded exec result.
func (s *workerSession) handleExec(payload []byte) (resp []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			resp, err = nil, fmt.Errorf("shard step panicked: %v", r)
		}
	}()
	req, err := decodeExec(payload)
	if err != nil {
		return nil, err
	}
	if err := s.applyWeights(req); err != nil {
		return nil, err
	}
	if err := s.ds.Space.Validate(req.Assignment); err != nil {
		return nil, err
	}
	batch, err := s.buildBatch(req)
	if err != nil {
		return nil, err
	}

	// The two phase marks mirror the in-process worker exactly: fresh
	// data feeds architecture learning first, then weight training.
	batch.UseForArch()
	loss, dout := s.net.Loss(req.Assignment, batch)
	batch.UseForWeights()
	s.net.Backward(dout)

	res := &execResult{Step: req.Step, Version: s.version, Loss: loss}
	res.Grads = collectGrads(s.params)
	resp = encodeExecResult(res)
	// Encoding copied every gradient bit out; restore the clean-grad
	// invariant for the next step.
	for _, p := range s.params {
		p.ZeroGrad()
	}
	return resp, nil
}

// applyWeights brings the session's weights to the request's version.
func (s *workerSession) applyWeights(req *execReq) error {
	switch req.WeightsMode {
	case weightsNone:
		if s.version != req.ToVersion {
			return fmt.Errorf("no weight sync but worker holds version %d, coordinator expects %d", s.version, req.ToVersion)
		}
		return nil
	case weightsFull:
		if err := s.net.LoadWeights(req.Full); err != nil {
			return err
		}
		s.version = req.ToVersion
		return nil
	case weightsDelta:
		if s.version != req.FromVersion {
			return fmt.Errorf("delta applies on version %d, worker holds %d", req.FromVersion, s.version)
		}
		for _, pt := range req.Delta {
			if pt.Param < 0 || pt.Param >= len(s.params) {
				return fmt.Errorf("delta for param %d, model has %d", pt.Param, len(s.params))
			}
			v := s.params[pt.Param].Value
			if pt.Rows == nil {
				if len(pt.Values) != len(v.Data) {
					return fmt.Errorf("dense delta for param %d has %d values, tensor has %d", pt.Param, len(pt.Values), len(v.Data))
				}
				copy(v.Data, pt.Values)
				continue
			}
			cols := v.Cols
			if len(pt.Values) != len(pt.Rows)*cols {
				return fmt.Errorf("row delta for param %d has %d values for %d rows of %d cols", pt.Param, len(pt.Values), len(pt.Rows), cols)
			}
			for k, r := range pt.Rows {
				if r < 0 || int(r) >= v.Rows {
					return fmt.Errorf("row delta for param %d touches row %d of %d", pt.Param, r, v.Rows)
				}
				copy(v.Data[int(r)*cols:(int(r)+1)*cols], pt.Values[k*cols:(k+1)*cols])
			}
		}
		s.version = req.ToVersion
		return nil
	default:
		return fmt.Errorf("unknown weights mode %d", req.WeightsMode)
	}
}

// buildBatch reconstructs the coordinator's batch bit-for-bit.
func (s *workerSession) buildBatch(req *execReq) (*datapipe.Batch, error) {
	n := req.NumExamples
	cfg := s.ds.Config
	if n <= 0 || req.NumDense != cfg.NumDense {
		return nil, fmt.Errorf("batch shape %d×%d does not fit model with %d dense features", n, req.NumDense, cfg.NumDense)
	}
	if len(req.Dense) != n*cfg.NumDense || len(req.Labels) != n {
		return nil, fmt.Errorf("batch payload sizes dense=%d labels=%d for %d examples", len(req.Dense), len(req.Labels), n)
	}
	if len(req.Sparse) != cfg.NumTables {
		return nil, fmt.Errorf("batch has %d sparse tables, model has %d", len(req.Sparse), cfg.NumTables)
	}
	for t, table := range req.Sparse {
		if len(table) != n {
			return nil, fmt.Errorf("sparse table %d has %d examples, batch has %d", t, len(table), n)
		}
	}
	dense := tensor.New(n, cfg.NumDense)
	copy(dense.Data, req.Dense)
	labels := tensor.New(n, 1)
	copy(labels.Data, req.Labels)
	return &datapipe.Batch{Dense: dense, Sparse: req.Sparse, Labels: labels}, nil
}

// collectGrads snapshots the replica's dirty gradients in param order.
// Row-sparse params ship only their dirty rows, in first-write order —
// the order the coordinator replays into its ghost replica so the
// fixed-order spine reduce sees exactly the state an in-process shard
// would have produced.
func collectGrads(params []*nn.Param) []tensorPatch {
	var out []tensorPatch
	for i, p := range params {
		if !p.Dirty {
			continue
		}
		if p.RowSparse && len(p.DirtyRows) > 0 {
			cols := p.Grad.Cols
			rows := append([]int32(nil), p.DirtyRows...)
			vals := make([]float64, len(rows)*cols)
			for k, r := range rows {
				copy(vals[k*cols:(k+1)*cols], p.Grad.Data[int(r)*cols:(int(r)+1)*cols])
			}
			out = append(out, tensorPatch{Param: i, Rows: rows, Values: vals})
			continue
		}
		if p.RowSparse {
			// Dirty with no recorded rows: the gradient is exactly zero by
			// the row invariant — nothing to ship.
			continue
		}
		out = append(out, tensorPatch{Param: i, Values: p.Grad.Data})
	}
	return out
}
