package space

import (
	"fmt"
	"math"

	"h2onas/internal/arch"
)

// CNNStage is one baseline stage of a convolutional model: Depth repeated
// blocks at Width output channels, the first block applying Stride.
type CNNStage struct {
	Width, Depth, Stride, Kernel, Expansion int
	Fused                                   bool
	SERatio                                 float64
}

// CNNConfig is the baseline convolutional model a CNN search space is
// anchored to.
type CNNConfig struct {
	Name       string
	StemWidth  int
	Stages     []CNNStage
	HeadWidth  int
	NumClasses int
	Resolution int
	WidthStep  int // the paper's 𝒳 increment
	Batch      int
	DType      int
}

// DefaultCNNConfig returns an EfficientNet-B0-shaped baseline with seven
// stages, the block count Table 5's CNN sizing assumes.
func DefaultCNNConfig() CNNConfig {
	return CNNConfig{
		Name:      "cnn-base",
		StemWidth: 32,
		Stages: []CNNStage{
			{Width: 16, Depth: 1, Stride: 1, Kernel: 3, Expansion: 1, SERatio: 0.25},
			{Width: 24, Depth: 2, Stride: 2, Kernel: 3, Expansion: 6, SERatio: 0.25, Fused: true},
			{Width: 40, Depth: 2, Stride: 2, Kernel: 5, Expansion: 6, SERatio: 0.25, Fused: true},
			{Width: 80, Depth: 3, Stride: 2, Kernel: 3, Expansion: 6, SERatio: 0.25},
			{Width: 112, Depth: 3, Stride: 1, Kernel: 5, Expansion: 6, SERatio: 0.25},
			{Width: 192, Depth: 4, Stride: 2, Kernel: 5, Expansion: 6, SERatio: 0.25},
			{Width: 320, Depth: 1, Stride: 1, Kernel: 3, Expansion: 6, SERatio: 0.25},
		},
		HeadWidth:  1280,
		NumClasses: 1000,
		Resolution: 224,
		WidthStep:  8,
		Batch:      128,
		DType:      2,
	}
}

// cnnResolutions are the Table 5 initial resolutions (8 choices, 224–600).
var cnnResolutions = []float64{224, 240, 260, 300, 380, 456, 528, 600}

// seRatios are the Table 5 squeeze-and-excite ratios (0 removes SE).
var seRatios = []float64{0, 1.0, 0.5, 0.25, 0.125}

// CNNSpace couples a CNN baseline with its Table 5 search space.
type CNNSpace struct {
	Config CNNConfig
	Space  *Space
}

// NewCNNSpace constructs the convolutional search space of Table 5: per
// stage, the block type, kernel, stride, expansion ratio, activation,
// tensor reshaping, SE ratio, skip connection, depth and width; plus the
// global initial resolution.
func NewCNNSpace(cfg CNNConfig) *CNNSpace {
	s := NewSpace("cnn/" + cfg.Name)
	for i, st := range cfg.Stages {
		p := fmt.Sprintf("block%d_", i)
		s.Add(NewLabeledDecision(p+"type", []string{"mbconv", "fused_mbconv"}, []float64{0, 1}))
		s.Add(NewDecision(p+"kernel", 3, 5, 7))
		s.Add(NewDecision(p+"stride", 1, 2, 4))
		s.Add(NewDecision(p+"expansion", 1, 3, 4, 6))
		s.Add(NewLabeledDecision(p+"act", []string{"relu", "swish"}, []float64{0, 1}))
		s.Add(NewLabeledDecision(p+"reshape", []string{"none", "space_to_depth", "space_to_batch"}, []float64{0, 1, 2}))
		s.Add(NewDecision(p+"se_ratio", seRatios...))
		s.Add(NewLabeledDecision(p+"skip", []string{"none", "identity"}, []float64{0, 1}))
		s.Add(NewDecision(p+"depth", depthDeltas...))
		s.Add(NewDecision(p+"width", offsets(st.Width, cfg.WidthStep, -5, 5, 8)...))
	}
	s.Add(NewDecision("resolution", cnnResolutions...))
	return &CNNSpace{Config: cfg, Space: s}
}

// CNNArch is a decoded convolutional architecture.
type CNNArch struct {
	Resolution int
	Blocks     []arch.MBConvSpec // one per stage; Depths holds repeats
	Depths     []int
	Reshapes   []int // 0 none, 1 space-to-depth, 2 space-to-batch
	Skips      []bool
}

// Decode maps an assignment onto a CNNArch.
func (c *CNNSpace) Decode(a Assignment) CNNArch {
	if err := c.Space.Validate(a); err != nil {
		panic(err)
	}
	out := CNNArch{Resolution: int(c.Space.Value(a, "resolution"))}
	for i, st := range c.Config.Stages {
		p := fmt.Sprintf("block%d_", i)
		depth := st.Depth + int(c.Space.Value(a, p+"depth"))
		if depth < 1 {
			depth = 1
		}
		act := "relu"
		if c.Space.Value(a, p+"act") == 1 {
			act = "swish"
		}
		spec := arch.MBConvSpec{
			Name:      fmt.Sprintf("stage%d", i),
			Fused:     c.Space.Value(a, p+"type") == 1,
			Out:       int(c.Space.Value(a, p+"width")),
			Kernel:    int(c.Space.Value(a, p+"kernel")),
			Stride:    int(c.Space.Value(a, p+"stride")),
			Expansion: int(c.Space.Value(a, p+"expansion")),
			SERatio:   c.Space.Value(a, p+"se_ratio"),
			Act:       act,
			Batch:     c.Config.Batch,
			DType:     c.Config.DType,
		}
		out.Blocks = append(out.Blocks, spec)
		out.Depths = append(out.Depths, depth)
		out.Reshapes = append(out.Reshapes, int(c.Space.Value(a, p+"reshape")))
		out.Skips = append(out.Skips, c.Space.Value(a, p+"skip") == 1)
	}
	return out
}

// BaselineAssignment returns the assignment reproducing the baseline
// stages at the baseline resolution.
func (c *CNNSpace) BaselineAssignment() Assignment {
	a := make(Assignment, len(c.Space.Decisions))
	pick := func(name string, want float64) {
		i := c.Space.Lookup(name)
		best, bestDiff := 0, math.Inf(1)
		for j, v := range c.Space.Decisions[i].Values {
			if d := math.Abs(v - want); d < bestDiff {
				best, bestDiff = j, d
			}
		}
		a[i] = best
	}
	for i, st := range c.Config.Stages {
		p := fmt.Sprintf("block%d_", i)
		t := 0.0
		if st.Fused {
			t = 1
		}
		pick(p+"type", t)
		pick(p+"kernel", float64(st.Kernel))
		pick(p+"stride", float64(st.Stride))
		pick(p+"expansion", float64(st.Expansion))
		pick(p+"act", 1) // swish is the EfficientNet baseline
		pick(p+"reshape", 0)
		pick(p+"se_ratio", st.SERatio)
		pick(p+"skip", 1)
		pick(p+"depth", 0)
		pick(p+"width", float64(st.Width))
	}
	pick("resolution", float64(c.Config.Resolution))
	return a
}

// Graph expands a decoded CNN into its operator graph: stem convolution,
// the staged (fused) MBConv blocks, head convolution, pooling and the
// classifier.
func (c *CNNSpace) Graph(ar CNNArch) *arch.Graph {
	cfg := c.Config
	b, dt := cfg.Batch, cfg.DType
	g := &arch.Graph{Name: cfg.Name, Batch: b, DTypeBytes: dt}

	res := ar.Resolution
	g.Add(arch.ConvOp("stem", b, res, res, 3, cfg.StemWidth, 3, 2, dt))
	h := (res + 1) / 2
	in := cfg.StemWidth
	var params float64
	params += float64(3*3*3*cfg.StemWidth + cfg.StemWidth)

	for i := range ar.Blocks {
		spec := ar.Blocks[i]
		if ar.Reshapes[i] != 0 {
			g.Add(arch.SpaceToDepthOp(fmt.Sprintf("stage%d/reshape", i), b*h*h*in, dt))
		}
		for layer := 0; layer < ar.Depths[i]; layer++ {
			ls := spec
			ls.Name = fmt.Sprintf("stage%d/l%d", i, layer)
			ls.In = in
			ls.H, ls.W = h, h
			if layer > 0 {
				ls.Stride = 1
				ls.In = spec.Out
			}
			if !ar.Skips[i] {
				// Searchable skip removal: force shapes to mismatch the
				// residual condition by leaving stride; modelling-wise the
				// residual add op is simply omitted. MBConvSpec adds the
				// residual only when stride==1 && in==out, so emulate
				// "none" by trimming the op after expansion.
				ops := ls.Ops()
				for _, op := range ops {
					if op.Kind == arch.Elementwise && op.Name == ls.Name+"/residual" {
						continue
					}
					g.Add(op)
					params += op.ParamBytes / float64(dt)
				}
			} else {
				for _, op := range ls.Ops() {
					g.Add(op)
					params += op.ParamBytes / float64(dt)
				}
			}
			hh, _, cc := ls.OutShape()
			h, in = hh, cc
		}
	}
	g.Add(arch.ConvOp("head", b, h, h, in, cfg.HeadWidth, 1, 1, dt))
	params += float64(in*cfg.HeadWidth + cfg.HeadWidth)
	g.Add(arch.PoolOp("avgpool", b*h*h*cfg.HeadWidth, b*cfg.HeadWidth, dt))
	g.Add(arch.DenseOp("classifier", b, cfg.HeadWidth, cfg.NumClasses, dt))
	params += float64(cfg.HeadWidth*cfg.NumClasses + cfg.NumClasses)
	g.Params = params
	return g
}
