package space

import (
	"fmt"
	"math"

	"h2onas/internal/arch"
)

// DLRMConfig describes the baseline deep learning recommendation model
// around which the DLRM search space is constructed (Figure 3): sparse
// embedding tables, an optional bottom MLP over dense features, and a top
// MLP over the concatenated features.
type DLRMConfig struct {
	Name string

	// Sparse side.
	NumTables    int // number of sparse features / embedding tables
	BaseEmbWidth int // baseline embedding width per table
	EmbWidthStep int // the paper's 𝒴 increment (minimum 8)
	BaseVocab    int // baseline vocabulary size per table
	BagSize      int // average ids per example per table

	// Dense side.
	NumDense     int   // dense input features
	BottomWidths []int // baseline bottom-MLP layer widths
	TopWidths    []int // baseline top-MLP hidden layer widths
	MLPWidthStep int   // the paper's 𝒵 increment (minimum 8)

	// Execution shape.
	Batch int // per-chip batch
	Chips int // chips the model trains on (embedding sharding + sync)
	DType int // bytes per element
}

// DefaultDLRMConfig returns a laptop-scale production-shaped DLRM: 26
// sparse features (the Criteo convention), a 3-layer bottom and 4-layer
// top MLP. Searches in tests and examples use this baseline.
func DefaultDLRMConfig() DLRMConfig {
	return DLRMConfig{
		Name:         "dlrm-base",
		NumTables:    26,
		BaseEmbWidth: 32,
		EmbWidthStep: 8,
		BaseVocab:    100_000,
		BagSize:      1,
		NumDense:     13,
		BottomWidths: []int{256, 128, 64},
		TopWidths:    []int{512, 256, 128, 64},
		MLPWidthStep: 32,
		Batch:        4096,
		Chips:        128,
		DType:        4,
	}
}

// SmallDLRMConfig returns a deliberately small baseline whose super-network
// trains in seconds: the configuration used for actual one-shot searches in
// tests, benches and examples. The base embedding width is chosen so the
// width sweep reaches 0 (table removal is searchable).
func SmallDLRMConfig() DLRMConfig {
	return DLRMConfig{
		Name:         "dlrm-small",
		NumTables:    8,
		BaseEmbWidth: 12,
		EmbWidthStep: 4,
		BaseVocab:    500,
		BagSize:      1,
		NumDense:     8,
		BottomWidths: []int{32, 16},
		TopWidths:    []int{64, 32},
		MLPWidthStep: 8,
		Batch:        256,
		Chips:        8,
		DType:        4,
	}
}

// ProductionDLRMConfig returns the production-scale shape the paper's
// Table 5 sizing refers to: O(150) embedding tables and O(10) MLP layers,
// giving the O(10^282) joint space.
func ProductionDLRMConfig() DLRMConfig {
	return DLRMConfig{
		Name:         "dlrm-production",
		NumTables:    150,
		BaseEmbWidth: 96,
		EmbWidthStep: 16,
		BaseVocab:    5_000_000,
		BagSize:      4,
		NumDense:     256,
		BottomWidths: []int{1024, 512, 256},
		TopWidths:    []int{2048, 1024, 1024, 512, 512, 256, 64},
		MLPWidthStep: 64,
		Batch:        8192,
		Chips:        128,
		DType:        4,
	}
}

// DLRMSpace couples a DLRM baseline with its search space and decoders.
type DLRMSpace struct {
	Config DLRMConfig
	Space  *Space

	maxBottom, maxTop int

	// Decision indices resolved once at construction so the hot decode
	// path (every supernet Forward/Backward) does no name formatting or
	// map lookups.
	embWidthIdx, embVocabIdx      []int
	bottomWidthIdx, bottomRankIdx []int
	topWidthIdx, topRankIdx       []int
	bottomDepthIdx, topDepthIdx   int
}

// vocabFractions are the Table 5 vocabulary-size multipliers.
var vocabFractions = []float64{0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0}

// lowRankFractions are the Table 5 rank fractions 1/10 … 10/10.
var lowRankFractions = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// depthDeltas are the Table 5 layer-count offsets −3 … +3.
var depthDeltas = []float64{-3, -2, -1, 0, 1, 2, 3}

// NewDLRMSpace constructs the DLRM search space of Table 5 over the given
// baseline: per-table embedding width and vocabulary decisions, per-layer
// MLP width and low-rank decisions (for every layer the searched depth can
// reach), and bottom/top depth decisions.
func NewDLRMSpace(cfg DLRMConfig) *DLRMSpace {
	s := NewSpace("dlrm/" + cfg.Name)
	for i := 0; i < cfg.NumTables; i++ {
		// Width 0 removes the table (Table 5 footnote 3).
		s.Add(NewDecision(fmt.Sprintf("emb%d_width", i),
			offsets(cfg.BaseEmbWidth, cfg.EmbWidthStep, -3, 3, 0)...))
		vocab := make([]float64, len(vocabFractions))
		for j, f := range vocabFractions {
			vocab[j] = math.Round(f * float64(cfg.BaseVocab))
		}
		s.Add(NewDecision(fmt.Sprintf("emb%d_vocab", i), vocab...))
	}
	maxBottom := len(cfg.BottomWidths) + 3
	maxTop := len(cfg.TopWidths) + 3
	addMLP := func(prefix string, widths []int, maxLayers int) {
		for i := 0; i < maxLayers; i++ {
			base := widths[min(i, len(widths)-1)]
			s.Add(NewDecision(fmt.Sprintf("%s%d_width", prefix, i),
				offsets(base, cfg.MLPWidthStep, -5, 5, 8)...))
			s.Add(NewDecision(fmt.Sprintf("%s%d_rank", prefix, i), lowRankFractions...))
		}
		s.Add(NewDecision(prefix+"_depth", depthDeltas...))
	}
	addMLP("bottom", cfg.BottomWidths, maxBottom)
	addMLP("top", cfg.TopWidths, maxTop)
	d := &DLRMSpace{Config: cfg, Space: s, maxBottom: maxBottom, maxTop: maxTop}
	for i := 0; i < cfg.NumTables; i++ {
		d.embWidthIdx = append(d.embWidthIdx, s.Lookup(fmt.Sprintf("emb%d_width", i)))
		d.embVocabIdx = append(d.embVocabIdx, s.Lookup(fmt.Sprintf("emb%d_vocab", i)))
	}
	for i := 0; i < maxBottom; i++ {
		d.bottomWidthIdx = append(d.bottomWidthIdx, s.Lookup(fmt.Sprintf("bottom%d_width", i)))
		d.bottomRankIdx = append(d.bottomRankIdx, s.Lookup(fmt.Sprintf("bottom%d_rank", i)))
	}
	for i := 0; i < maxTop; i++ {
		d.topWidthIdx = append(d.topWidthIdx, s.Lookup(fmt.Sprintf("top%d_width", i)))
		d.topRankIdx = append(d.topRankIdx, s.Lookup(fmt.Sprintf("top%d_rank", i)))
	}
	d.bottomDepthIdx = s.Lookup("bottom_depth")
	d.topDepthIdx = s.Lookup("top_depth")
	return d
}

// DLRMArch is a decoded DLRM architecture candidate.
type DLRMArch struct {
	EmbWidths []int // 0 = table removed
	EmbVocabs []int
	// Active layer widths and low-rank values (rank == width means no
	// factorization).
	BottomWidths, BottomRanks []int
	TopWidths, TopRanks       []int
}

// MaxBottomLayers returns the number of bottom-MLP layer slots the space
// carries decisions for.
func (d *DLRMSpace) MaxBottomLayers() int { return d.maxBottom }

// MaxTopLayers returns the number of top-MLP layer slots.
func (d *DLRMSpace) MaxTopLayers() int { return d.maxTop }

// Decode maps an assignment to the architecture it selects.
func (d *DLRMSpace) Decode(a Assignment) DLRMArch {
	var out DLRMArch
	d.DecodeInto(a, &out)
	return out
}

// DecodeInto decodes the assignment into out, reusing out's slices when
// their capacity allows — the allocation-free decode the search step's
// hot path uses. Decision indices are resolved once at construction, so
// no name formatting or map lookups happen here.
func (d *DLRMSpace) DecodeInto(a Assignment, out *DLRMArch) {
	if err := d.Space.Validate(a); err != nil {
		panic(err)
	}
	cfg := d.Config
	val := func(idx int) float64 { return d.Space.Decisions[idx].Values[a[idx]] }
	out.EmbWidths = out.EmbWidths[:0]
	out.EmbVocabs = out.EmbVocabs[:0]
	for i := 0; i < cfg.NumTables; i++ {
		out.EmbWidths = append(out.EmbWidths, int(val(d.embWidthIdx[i])))
		out.EmbVocabs = append(out.EmbVocabs, int(val(d.embVocabIdx[i])))
	}
	decodeMLP := func(widths, ranks []int, widthIdx, rankIdx []int, depthIdx, baseDepth, maxLayers int) ([]int, []int) {
		depth := baseDepth + int(val(depthIdx))
		if depth < 1 {
			depth = 1
		}
		if depth > maxLayers {
			depth = maxLayers
		}
		widths, ranks = widths[:0], ranks[:0]
		for i := 0; i < depth; i++ {
			w := int(val(widthIdx[i]))
			frac := val(rankIdx[i])
			rank := int(math.Round(frac * float64(w)))
			rank = roundUpTo8(rank)
			if rank > w {
				rank = w
			}
			widths = append(widths, w)
			ranks = append(ranks, rank)
		}
		return widths, ranks
	}
	out.BottomWidths, out.BottomRanks = decodeMLP(out.BottomWidths, out.BottomRanks,
		d.bottomWidthIdx, d.bottomRankIdx, d.bottomDepthIdx, len(cfg.BottomWidths), d.maxBottom)
	out.TopWidths, out.TopRanks = decodeMLP(out.TopWidths, out.TopRanks,
		d.topWidthIdx, d.topRankIdx, d.topDepthIdx, len(cfg.TopWidths), d.maxTop)
}

// BaselineAssignment returns the assignment that reproduces the baseline
// architecture (all offsets zero, vocab 100%, rank fraction 1).
func (d *DLRMSpace) BaselineAssignment() Assignment {
	cfg := d.Config
	a := make(Assignment, len(d.Space.Decisions))
	set := func(name string, want float64) { a[d.Space.Lookup(name)] = d.Space.NearestIndex(name, want) }
	for i := 0; i < cfg.NumTables; i++ {
		set(fmt.Sprintf("emb%d_width", i), float64(cfg.BaseEmbWidth))
		set(fmt.Sprintf("emb%d_vocab", i), float64(cfg.BaseVocab))
	}
	setMLP := func(prefix string, widths []int, maxLayers int) {
		for i := 0; i < maxLayers; i++ {
			set(fmt.Sprintf("%s%d_width", prefix, i), float64(widths[min(i, len(widths)-1)]))
			set(fmt.Sprintf("%s%d_rank", prefix, i), 1.0)
		}
		set(prefix+"_depth", 0)
	}
	setMLP("bottom", cfg.BottomWidths, d.maxBottom)
	setMLP("top", cfg.TopWidths, d.maxTop)
	return a
}

// Graph builds the arch.Graph for a decoded candidate, modelling the
// paper's distributed DLRM execution: table-sharded embeddings with an
// all-to-all exchange, data-parallel MLPs with gradient all-reduce.
func (d *DLRMSpace) Graph(ar DLRMArch) *arch.Graph {
	cfg := d.Config
	b, dt := cfg.Batch, cfg.DType
	g := &arch.Graph{Name: cfg.Name, Batch: b, DTypeBytes: dt}

	var embOut int // concatenated embedding width
	var embParams float64
	for i, w := range ar.EmbWidths {
		if w <= 0 {
			continue
		}
		vocab := ar.EmbVocabs[i]
		g.Add(arch.EmbeddingOp(fmt.Sprintf("emb%d", i), b, cfg.BagSize, w, vocab, dt))
		embOut += w
		embParams += float64(vocab) * float64(w)
	}
	if embOut > 0 && cfg.Chips > 1 {
		// Each chip exchanges its shard's pooled embeddings with all
		// others: ~batch × total width values per chip per step.
		g.Add(arch.AllToAllOp("emb_exchange", float64(b*embOut)*float64(dt)))
	}

	var denseParams float64
	addMLP := func(prefix string, in int, widths, ranks []int) int {
		for i, w := range widths {
			rank := ranks[i]
			name := fmt.Sprintf("%s%d", prefix, i)
			if rank < w && rank < in {
				for _, op := range arch.LowRankDenseOps(name, b, in, w, rank, dt) {
					g.Add(op)
				}
				denseParams += float64(in*rank + rank*w + w)
			} else {
				g.Add(arch.DenseOp(name, b, in, w, dt))
				denseParams += float64(in*w + w)
			}
			g.Add(arch.ElementwiseOp(name+"/relu", b*w, 1, dt))
			in = w
		}
		return in
	}
	bottomOut := 0
	if cfg.NumDense > 0 && len(ar.BottomWidths) > 0 {
		bottomOut = addMLP("bottom", cfg.NumDense, ar.BottomWidths, ar.BottomRanks)
	}
	concatWidth := bottomOut + embOut
	if concatWidth == 0 {
		concatWidth = 1
	}
	g.Add(arch.ConcatOp("interact", b*concatWidth, dt))
	topOut := addMLP("top", concatWidth, ar.TopWidths, ar.TopRanks)
	g.Add(arch.DenseOp("logit", b, topOut, 1, dt))
	denseParams += float64(topOut + 1)

	if cfg.Chips > 1 {
		// Dense parameters are data-parallel and all-reduced every step;
		// embedding tables are model-parallel (sharded), so their
		// gradients stay local.
		g.Add(arch.AllReduceOp("grad_sync", denseParams*float64(dt)))
	}
	g.Params = embParams + denseParams
	return g
}

// ServingBytes returns the model's serving memory footprint in bytes
// (the analytic model-size objective of Section 6.2.1).
func (d *DLRMSpace) ServingBytes(ar DLRMArch) float64 {
	var params float64
	for i, w := range ar.EmbWidths {
		if w > 0 {
			params += float64(ar.EmbVocabs[i]) * float64(w)
		}
	}
	in := d.Config.NumDense
	count := func(widths, ranks []int, in int) int {
		for i, w := range widths {
			rank := ranks[i]
			if rank < w && rank < in {
				params += float64(in*rank + rank*w + w)
			} else {
				params += float64(in*w + w)
			}
			in = w
		}
		return in
	}
	bottomOut := 0
	if d.Config.NumDense > 0 && len(ar.BottomWidths) > 0 {
		bottomOut = count(ar.BottomWidths, ar.BottomRanks, in)
	}
	embOut := 0
	for _, w := range ar.EmbWidths {
		if w > 0 {
			embOut += w
		}
	}
	concat := bottomOut + embOut
	if concat == 0 {
		concat = 1
	}
	topOut := count(ar.TopWidths, ar.TopRanks, concat)
	params += float64(topOut + 1)
	return params * float64(d.Config.DType)
}

func roundUpTo8(v int) int {
	if v < 8 {
		return 8
	}
	return (v + 7) / 8 * 8
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
