package space

import (
	"encoding/json"
	"fmt"
	"io"
)

// Architectures are exchanged between systems (search → retraining →
// serving) as decision-name → option-label documents, robust to decision
// reordering and self-describing for humans.

// archFile is the JSON wire format.
type archFile struct {
	Version int               `json:"version"`
	Space   string            `json:"space"`
	Choices map[string]string `json:"choices"`
}

const persistVersion = 1

// SaveAssignment writes the assignment as a named-choice JSON document.
func (s *Space) SaveAssignment(w io.Writer, a Assignment) error {
	if err := s.Validate(a); err != nil {
		return err
	}
	f := archFile{Version: persistVersion, Space: s.Name, Choices: make(map[string]string, len(s.Decisions))}
	for i, d := range s.Decisions {
		f.Choices[d.Name] = d.Labels[a[i]]
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&f)
}

// LoadAssignment reads an assignment written by SaveAssignment, matching
// choices by decision name and option label. Unknown decisions in the
// file and missing decisions in the file both fail loudly.
func (s *Space) LoadAssignment(r io.Reader) (Assignment, error) {
	var f archFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("space: decoding saved architecture: %w", err)
	}
	if f.Version != persistVersion {
		return nil, fmt.Errorf("space: unsupported architecture file version %d", f.Version)
	}
	if len(f.Choices) != len(s.Decisions) {
		return nil, fmt.Errorf("space: file has %d choices, space has %d decisions", len(f.Choices), len(s.Decisions))
	}
	a := make(Assignment, len(s.Decisions))
	for i, d := range s.Decisions {
		label, ok := f.Choices[d.Name]
		if !ok {
			return nil, fmt.Errorf("space: file is missing decision %q", d.Name)
		}
		found := -1
		for j, l := range d.Labels {
			if l == label {
				found = j
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("space: decision %q has no option labeled %q", d.Name, label)
		}
		a[i] = found
	}
	return a, nil
}
