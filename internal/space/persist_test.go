package space

import (
	"bytes"
	"strings"
	"testing"

	"h2onas/internal/tensor"
)

func TestAssignmentSaveLoadRoundTrip(t *testing.T) {
	ds := NewDLRMSpace(SmallDLRMConfig())
	rng := tensor.NewRNG(1)
	for trial := 0; trial < 10; trial++ {
		a := make(Assignment, len(ds.Space.Decisions))
		for i, d := range ds.Space.Decisions {
			a[i] = rng.Intn(d.Arity())
		}
		var buf bytes.Buffer
		if err := ds.Space.SaveAssignment(&buf, a); err != nil {
			t.Fatal(err)
		}
		got, err := ds.Space.LoadAssignment(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if got[i] != a[i] {
				t.Fatalf("trial %d: decision %d loaded as %d, want %d", trial, i, got[i], a[i])
			}
		}
	}
}

func TestSaveAssignmentValidates(t *testing.T) {
	s := NewSpace("t", NewDecision("a", 1, 2))
	var buf bytes.Buffer
	if err := s.SaveAssignment(&buf, Assignment{7}); err == nil {
		t.Fatal("invalid assignment must not serialize")
	}
}

func TestLoadAssignmentRejectsMismatches(t *testing.T) {
	s := NewSpace("t", NewDecision("a", 1, 2), NewDecision("b", 3, 4))
	var buf bytes.Buffer
	if err := s.SaveAssignment(&buf, Assignment{0, 1}); err != nil {
		t.Fatal(err)
	}
	saved := buf.String()

	other := NewSpace("t2", NewDecision("a", 1, 2), NewDecision("zzz", 3, 4))
	if _, err := other.LoadAssignment(strings.NewReader(saved)); err == nil {
		t.Fatal("missing decision must be rejected")
	}
	if _, err := s.LoadAssignment(strings.NewReader(`{"version":1,"choices":{"a":"99","b":"3"}}`)); err == nil {
		t.Fatal("unknown option label must be rejected")
	}
	if _, err := s.LoadAssignment(strings.NewReader(`{"version":9}`)); err == nil {
		t.Fatal("unknown version must be rejected")
	}
	if _, err := s.LoadAssignment(strings.NewReader("{garbage")); err == nil {
		t.Fatal("corrupt input must be rejected")
	}
}

func TestSavedArchitectureIsHumanReadable(t *testing.T) {
	ds := NewDLRMSpace(SmallDLRMConfig())
	var buf bytes.Buffer
	if err := ds.Space.SaveAssignment(&buf, ds.BaselineAssignment()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"emb0_width": "12"`, `"top_depth": "0"`, `"space"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("saved architecture missing %q:\n%s", want, out)
		}
	}
}
