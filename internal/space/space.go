// Package space defines H₂O-NAS search spaces: sets of categorical
// decisions with builders for the DLRM, CNN, transformer, and hybrid-ViT
// spaces of Table 5, plus decoders that turn a decision assignment into an
// arch.Graph (for performance simulation) or a super-network configuration
// (for one-shot training).
//
// To the RL search algorithm a space is just "a set of categorical
// decisions, where each decision controls a different aspect of the
// network architecture" (Section 4.1); all model-domain knowledge lives in
// the builders and decoders here.
package space

import (
	"fmt"
	"math"
)

// Decision is one independent categorical choice. Values carries a numeric
// encoding of each option used for performance-model featurization; Labels
// names the options for display.
type Decision struct {
	Name   string
	Labels []string
	Values []float64
}

// Arity returns the number of options.
func (d *Decision) Arity() int { return len(d.Values) }

// NewDecision builds a decision from numeric options, deriving labels.
func NewDecision(name string, values ...float64) Decision {
	labels := make([]string, len(values))
	for i, v := range values {
		labels[i] = fmt.Sprintf("%g", v)
	}
	return Decision{Name: name, Labels: labels, Values: values}
}

// NewLabeledDecision builds a decision with explicit labels and values.
func NewLabeledDecision(name string, labels []string, values []float64) Decision {
	if len(labels) != len(values) {
		panic(fmt.Sprintf("space: decision %q has %d labels but %d values", name, len(labels), len(values)))
	}
	return Decision{Name: name, Labels: labels, Values: values}
}

// Assignment selects one option index per decision, in decision order.
type Assignment []int

// Space is an ordered set of decisions.
type Space struct {
	Name      string
	Decisions []Decision

	index map[string]int
}

// NewSpace builds a space, indexing decisions by name.
func NewSpace(name string, decisions ...Decision) *Space {
	s := &Space{Name: name, Decisions: decisions, index: make(map[string]int, len(decisions))}
	for i, d := range decisions {
		if _, dup := s.index[d.Name]; dup {
			panic(fmt.Sprintf("space: duplicate decision %q", d.Name))
		}
		if d.Arity() == 0 {
			panic(fmt.Sprintf("space: decision %q has no options", d.Name))
		}
		s.index[d.Name] = i
	}
	return s
}

// Add appends a decision.
func (s *Space) Add(d Decision) {
	if s.index == nil {
		s.index = make(map[string]int)
	}
	if _, dup := s.index[d.Name]; dup {
		panic(fmt.Sprintf("space: duplicate decision %q", d.Name))
	}
	if d.Arity() == 0 {
		panic(fmt.Sprintf("space: decision %q has no options", d.Name))
	}
	s.index[d.Name] = len(s.Decisions)
	s.Decisions = append(s.Decisions, d)
}

// Lookup returns the index of the named decision, or -1.
func (s *Space) Lookup(name string) int {
	i, ok := s.index[name]
	if !ok {
		return -1
	}
	return i
}

// Value returns the numeric value the assignment selects for the named
// decision. It panics on unknown names or malformed assignments, which are
// programming errors.
func (s *Space) Value(a Assignment, name string) float64 {
	i := s.Lookup(name)
	if i < 0 {
		panic(fmt.Sprintf("space: unknown decision %q", name))
	}
	return s.Decisions[i].Values[a[i]]
}

// Log10Size returns log₁₀ of the number of architectures in the space
// (the product of decision arities). Spaces like DLRM's O(10^282) overflow
// float64 as raw counts, so size is carried in log space.
func (s *Space) Log10Size() float64 {
	var sum float64
	for _, d := range s.Decisions {
		sum += math.Log10(float64(d.Arity()))
	}
	return sum
}

// Validate checks that the assignment has one in-range index per decision.
func (s *Space) Validate(a Assignment) error {
	if len(a) != len(s.Decisions) {
		return fmt.Errorf("space: assignment length %d != %d decisions", len(a), len(s.Decisions))
	}
	for i, choice := range a {
		if choice < 0 || choice >= s.Decisions[i].Arity() {
			return fmt.Errorf("space: decision %q choice %d outside [0,%d)", s.Decisions[i].Name, choice, s.Decisions[i].Arity())
		}
	}
	return nil
}

// Describe renders the assignment as "decision=label" pairs.
func (s *Space) Describe(a Assignment) string {
	if err := s.Validate(a); err != nil {
		return err.Error()
	}
	out := ""
	for i, d := range s.Decisions {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%s", d.Name, d.Labels[a[i]])
	}
	return out
}

// Features encodes an assignment as the numeric feature vector the
// performance model consumes: each decision contributes its selected
// value, min-max normalized over that decision's options so every feature
// lies in [0, 1] (constant decisions encode as 0).
func (s *Space) Features(a Assignment) []float64 {
	out := make([]float64, len(s.Decisions))
	for i, d := range s.Decisions {
		lo, hi := d.Values[0], d.Values[0]
		for _, v := range d.Values {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if hi > lo {
			out[i] = (d.Values[a[i]] - lo) / (hi - lo)
		}
	}
	return out
}

// NearestIndex returns the option index of the named decision whose value
// is closest to want. It panics on unknown decisions.
func (s *Space) NearestIndex(name string, want float64) int {
	i := s.Lookup(name)
	if i < 0 {
		panic(fmt.Sprintf("space: unknown decision %q", name))
	}
	best, bestDiff := 0, math.Inf(1)
	for j, v := range s.Decisions[i].Values {
		if d := math.Abs(v - want); d < bestDiff {
			best, bestDiff = j, d
		}
	}
	return best
}

// offsets returns base + k·step for k in [lo, hi], excluding results below
// floor (Table 5's "excluding zero": a width of zero is not a valid layer,
// except where zero explicitly means removal and floor is 0).
func offsets(base, step, lo, hi, floor int) []float64 {
	var out []float64
	for k := lo; k <= hi; k++ {
		v := base + k*step
		if v < floor {
			continue
		}
		out = append(out, float64(v))
	}
	return out
}
