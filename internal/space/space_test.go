package space

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"h2onas/internal/tensor"
)

func TestDecisionBasics(t *testing.T) {
	d := NewDecision("x", 1, 2, 3)
	if d.Arity() != 3 {
		t.Fatalf("Arity = %d", d.Arity())
	}
	if d.Labels[1] != "2" {
		t.Fatalf("derived label = %q", d.Labels[1])
	}
}

func TestNewLabeledDecisionValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for label/value mismatch")
		}
	}()
	NewLabeledDecision("x", []string{"a"}, []float64{1, 2})
}

func TestSpaceLookupAndValue(t *testing.T) {
	s := NewSpace("t", NewDecision("a", 10, 20), NewDecision("b", 1, 2, 3))
	if s.Lookup("b") != 1 {
		t.Fatal("Lookup failed")
	}
	if s.Lookup("zzz") != -1 {
		t.Fatal("unknown name must return -1")
	}
	a := Assignment{1, 2}
	if got := s.Value(a, "a"); got != 20 {
		t.Fatalf("Value(a) = %v", got)
	}
	if got := s.Value(a, "b"); got != 3 {
		t.Fatalf("Value(b) = %v", got)
	}
}

func TestSpaceDuplicateDecisionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for duplicate decision")
		}
	}()
	NewSpace("t", NewDecision("a", 1), NewDecision("a", 2))
}

func TestSpaceValidate(t *testing.T) {
	s := NewSpace("t", NewDecision("a", 1, 2))
	if err := s.Validate(Assignment{0}); err != nil {
		t.Fatalf("valid assignment rejected: %v", err)
	}
	if s.Validate(Assignment{2}) == nil {
		t.Fatal("out-of-range choice accepted")
	}
	if s.Validate(Assignment{0, 0}) == nil {
		t.Fatal("wrong-length assignment accepted")
	}
}

func TestLog10Size(t *testing.T) {
	s := NewSpace("t", NewDecision("a", 1, 2), NewDecision("b", 1, 2, 3, 4, 5))
	want := math.Log10(2) + math.Log10(5)
	if math.Abs(s.Log10Size()-want) > 1e-12 {
		t.Fatalf("Log10Size = %v, want %v", s.Log10Size(), want)
	}
}

func TestFeaturesNormalized(t *testing.T) {
	s := NewSpace("t", NewDecision("a", 8, 16, 24), NewDecision("const", 5))
	f := s.Features(Assignment{2, 0})
	if f[0] != 1 {
		t.Fatalf("max option must encode as 1, got %v", f[0])
	}
	if f[1] != 0 {
		t.Fatalf("constant decision must encode as 0, got %v", f[1])
	}
	f = s.Features(Assignment{0, 0})
	if f[0] != 0 {
		t.Fatalf("min option must encode as 0, got %v", f[0])
	}
}

// --- DLRM space ---

func TestDLRMSpaceSizeMatchesPaper(t *testing.T) {
	// Table 5: production DLRM space is O(10^282).
	d := NewDLRMSpace(ProductionDLRMConfig())
	size := d.Space.Log10Size()
	if size < 270 || size < 200 {
		t.Fatalf("production DLRM space log10 size = %v, want O(282)", size)
	}
	if size < 260 || size > 310 {
		t.Errorf("production DLRM space log10 size = %v, want ≈282", size)
	}
}

func TestDLRMBaselineDecodesToBaseline(t *testing.T) {
	d := NewDLRMSpace(DefaultDLRMConfig())
	ar := d.Decode(d.BaselineAssignment())
	cfg := d.Config
	for i, w := range ar.EmbWidths {
		if w != cfg.BaseEmbWidth {
			t.Fatalf("table %d width = %d, want baseline %d", i, w, cfg.BaseEmbWidth)
		}
		if ar.EmbVocabs[i] != cfg.BaseVocab {
			t.Fatalf("table %d vocab = %d, want baseline %d", i, ar.EmbVocabs[i], cfg.BaseVocab)
		}
	}
	if len(ar.BottomWidths) != len(cfg.BottomWidths) {
		t.Fatalf("bottom depth = %d, want %d", len(ar.BottomWidths), len(cfg.BottomWidths))
	}
	for i, w := range ar.BottomWidths {
		if w != cfg.BottomWidths[i] {
			t.Fatalf("bottom[%d] = %d, want %d", i, w, cfg.BottomWidths[i])
		}
		if ar.BottomRanks[i] < w { // full rank at baseline
			t.Fatalf("bottom[%d] rank %d should be full (%d)", i, ar.BottomRanks[i], w)
		}
	}
	if len(ar.TopWidths) != len(cfg.TopWidths) {
		t.Fatalf("top depth = %d, want %d", len(ar.TopWidths), len(cfg.TopWidths))
	}
}

func TestDLRMDecodeAnyAssignmentProperty(t *testing.T) {
	d := NewDLRMSpace(DefaultDLRMConfig())
	rng := tensor.NewRNG(1)
	f := func(seed uint64) bool {
		_ = seed
		a := make(Assignment, len(d.Space.Decisions))
		for i, dec := range d.Space.Decisions {
			a[i] = rng.Intn(dec.Arity())
		}
		ar := d.Decode(a)
		// Decoded architectures must always be well-formed.
		if len(ar.BottomWidths) < 1 || len(ar.TopWidths) < 1 {
			return false
		}
		for i, w := range ar.BottomWidths {
			if w < 8 || ar.BottomRanks[i] < 8 || ar.BottomRanks[i] > w {
				return false
			}
		}
		g := d.Graph(ar)
		return g.Validate() == nil && g.TotalFLOPs() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDLRMGraphRemovedTableShrinksExchange(t *testing.T) {
	d := NewDLRMSpace(DefaultDLRMConfig())
	base := d.Decode(d.BaselineAssignment())
	removed := base
	removed.EmbWidths = append([]int(nil), base.EmbWidths...)
	removed.EmbWidths[0] = 0
	gBase := d.Graph(base)
	gRem := d.Graph(removed)
	if gRem.NetworkBytes() >= gBase.NetworkBytes() {
		t.Fatal("removing a table must shrink the embedding exchange")
	}
	if gRem.Params >= gBase.Params {
		t.Fatal("removing a table must shrink parameters")
	}
}

func TestDLRMServingBytesTracksGraphParams(t *testing.T) {
	d := NewDLRMSpace(DefaultDLRMConfig())
	ar := d.Decode(d.BaselineAssignment())
	g := d.Graph(ar)
	want := g.Params * float64(d.Config.DType)
	got := d.ServingBytes(ar)
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("ServingBytes = %v, Graph params bytes = %v", got, want)
	}
}

func TestDLRMLowRankShrinksFLOPs(t *testing.T) {
	d := NewDLRMSpace(DefaultDLRMConfig())
	base := d.Decode(d.BaselineAssignment())
	low := base
	low.TopRanks = append([]int(nil), base.TopRanks...)
	for i := range low.TopRanks {
		low.TopRanks[i] = 8
	}
	if d.Graph(low).TotalFLOPs() >= d.Graph(base).TotalFLOPs() {
		t.Fatal("rank-8 factorization must reduce total FLOPs")
	}
}

// --- CNN space ---

func TestCNNSpaceSizeMatchesPaper(t *testing.T) {
	// Table 5: (302400)^7 × 8 ≈ O(10^39).
	c := NewCNNSpace(DefaultCNNConfig())
	size := c.Space.Log10Size()
	want := 7*math.Log10(302400) + math.Log10(8)
	if math.Abs(size-want) > 0.5 {
		t.Fatalf("CNN space log10 size = %v, want ≈%v", size, want)
	}
}

func TestCNNBaselineDecodes(t *testing.T) {
	c := NewCNNSpace(DefaultCNNConfig())
	ar := c.Decode(c.BaselineAssignment())
	if ar.Resolution != 224 {
		t.Fatalf("baseline resolution = %d", ar.Resolution)
	}
	for i, blk := range ar.Blocks {
		st := c.Config.Stages[i]
		if blk.Out != st.Width || blk.Kernel != st.Kernel || blk.Stride != st.Stride {
			t.Fatalf("stage %d decode mismatch: %+v vs %+v", i, blk, st)
		}
		if ar.Depths[i] != st.Depth {
			t.Fatalf("stage %d depth = %d, want %d", i, ar.Depths[i], st.Depth)
		}
	}
}

func TestCNNGraphValidAcrossRandomAssignments(t *testing.T) {
	c := NewCNNSpace(DefaultCNNConfig())
	rng := tensor.NewRNG(2)
	for trial := 0; trial < 25; trial++ {
		a := make(Assignment, len(c.Space.Decisions))
		for i, dec := range c.Space.Decisions {
			a[i] = rng.Intn(dec.Arity())
		}
		g := c.Graph(c.Decode(a))
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if g.TotalFLOPs() <= 0 || g.Params <= 0 {
			t.Fatalf("trial %d: degenerate graph", trial)
		}
	}
}

func TestCNNResolutionScalesFLOPs(t *testing.T) {
	c := NewCNNSpace(DefaultCNNConfig())
	base := c.BaselineAssignment()
	hi := append(Assignment(nil), base...)
	hi[c.Space.Lookup("resolution")] = len(cnnResolutions) - 1
	fBase := c.Graph(c.Decode(base)).TotalFLOPs()
	fHi := c.Graph(c.Decode(hi)).TotalFLOPs()
	if fHi <= fBase*2 {
		t.Fatalf("600px (%v FLOPs) should be far costlier than 224px (%v)", fHi, fBase)
	}
}

// --- ViT spaces ---

func TestTransformerSpaceSizeMatchesPaper(t *testing.T) {
	// Table 5: (17920)^2 ≈ O(10^8) for 2 blocks.
	v := NewTransformerSpace(DefaultViTConfig())
	size := v.Space.Log10Size()
	want := 2 * math.Log10(17920)
	if math.Abs(size-want) > 0.3 {
		t.Fatalf("TFM space log10 size = %v, want ≈%v", size, want)
	}
}

func TestHybridViTSpaceSizeMatchesPaper(t *testing.T) {
	// Table 5: 17920² × 21 × 302400² × 7 ≈ O(10^21).
	v := NewHybridViTSpace(DefaultViTConfig())
	size := v.Space.Log10Size()
	want := 2*math.Log10(17920) + math.Log10(21) + 2*math.Log10(302400) + math.Log10(7)
	if math.Abs(size-want) > 0.5 {
		t.Fatalf("hybrid space log10 size = %v, want ≈%v", size, want)
	}
}

func TestViTBaselineDecodes(t *testing.T) {
	v := NewHybridViTSpace(DefaultViTConfig())
	ar := v.Decode(v.BaselineAssignment())
	if ar.PatchSize != 16 || ar.Resolution != 224 {
		t.Fatalf("baseline stem decode: patch %d res %d", ar.PatchSize, ar.Resolution)
	}
	for i, blk := range ar.TFMBlocks {
		if blk.Hidden != v.Config.Blocks[i].Hidden {
			t.Fatalf("tfm %d hidden = %d, want %d", i, blk.Hidden, v.Config.Blocks[i].Hidden)
		}
		if blk.Act != "gelu" {
			t.Fatalf("baseline activation = %s", blk.Act)
		}
	}
}

func TestViTGraphValidAcrossRandomAssignments(t *testing.T) {
	v := NewHybridViTSpace(DefaultViTConfig())
	rng := tensor.NewRNG(3)
	for trial := 0; trial < 25; trial++ {
		a := make(Assignment, len(v.Space.Decisions))
		for i, dec := range v.Space.Decisions {
			a[i] = rng.Intn(dec.Arity())
		}
		g := v.Graph(v.Decode(a))
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestViTSquaredReLUCheaperThanGeLU(t *testing.T) {
	v := NewTransformerSpace(DefaultViTConfig())
	base := v.BaselineAssignment()
	srelu := append(Assignment(nil), base...)
	for i := range v.Config.Blocks {
		idx := v.Space.Lookup(fmt.Sprintf("tfm%d_act", i))
		srelu[idx] = 3 // squared_relu
	}
	fGelu := v.Graph(v.Decode(base)).TotalFLOPs()
	fSrelu := v.Graph(v.Decode(srelu)).TotalFLOPs()
	if fSrelu >= fGelu {
		t.Fatalf("squared ReLU (%v) must cost less than GeLU (%v)", fSrelu, fGelu)
	}
}
