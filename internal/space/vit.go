package space

import (
	"fmt"
	"math"

	"h2onas/internal/arch"
)

// TFMBlockConfig is the baseline for one multi-layer transformer block.
type TFMBlockConfig struct {
	Hidden, Layers, Heads, FFNRatio int
}

// ViTConfig is the baseline a transformer / hybrid-ViT search space is
// anchored to: an optional convolutional stem (hybrid models à la CoAtNet)
// followed by multi-layer transformer blocks.
type ViTConfig struct {
	Name string

	// Transformer section.
	Blocks []TFMBlockConfig

	// Hybrid convolutional stem (nil ConvStages means pure ViT).
	ConvStages []CNNStage
	StemWidth  int

	PatchSize  int
	Resolution int
	NumClasses int
	WidthStep  int
	Batch      int
	DType      int

	// HiddenStep/MaxHidden bound the searchable hidden sizes: multiples
	// of HiddenStep up to MaxHidden. Zero values select the Table 5
	// defaults (multiples of 64 up to 1024).
	HiddenStep, MaxHidden int
}

// DefaultViTConfig returns a CoAtNet-shaped hybrid baseline: two
// convolutional stages followed by two transformer blocks, the structure
// Table 5's hybrid sizing (2 TFM + 2 conv blocks) assumes.
func DefaultViTConfig() ViTConfig {
	return ViTConfig{
		Name: "vit-base",
		Blocks: []TFMBlockConfig{
			{Hidden: 384, Layers: 5, Heads: 8, FFNRatio: 4},
			{Hidden: 768, Layers: 2, Heads: 12, FFNRatio: 4},
		},
		ConvStages: []CNNStage{
			{Width: 96, Depth: 2, Stride: 2, Kernel: 3, Expansion: 4},
			{Width: 192, Depth: 3, Stride: 2, Kernel: 3, Expansion: 4},
		},
		StemWidth:  64,
		PatchSize:  16,
		Resolution: 224,
		NumClasses: 1000,
		WidthStep:  64,
		Batch:      64,
		DType:      2,
	}
}

// Table 5 hybrid-stem choices.
var patchSizes = []float64{4, 7, 8, 14, 16, 28, 32}

// vitResolutions spans 112–448 in 21 steps (Table 5: "total 21 choices").
func vitResolutions() []float64 {
	out := make([]float64, 21)
	for i := range out {
		out[i] = float64(112 + i*((448-112)/20))
	}
	return out
}

// hiddenSizes are multiples of step up to max; the Table 5 default is
// multiples of 64 up to 1024 (16 choices).
func hiddenSizes(cfg ViTConfig) []float64 {
	step, maxH := cfg.HiddenStep, cfg.MaxHidden
	if step <= 0 {
		step = 64
	}
	if maxH <= 0 {
		maxH = 1024
	}
	out := make([]float64, 0, maxH/step)
	for h := step; h <= maxH; h += step {
		out = append(out, float64(h))
	}
	return out
}

// SmallViTConfig returns a deliberately small pure-transformer baseline
// whose super-network trains in seconds: the configuration used for
// actual one-shot transformer searches in tests and examples. The
// sequence task it pairs with lives in datapipe.SeqConfig.
func SmallViTConfig() ViTConfig {
	return ViTConfig{
		Name: "tfm-small",
		Blocks: []TFMBlockConfig{
			{Hidden: 48, Layers: 2, Heads: 3, FFNRatio: 2},
		},
		PatchSize:  1,
		Resolution: 16,
		NumClasses: 2,
		Batch:      64,
		DType:      4,
		HiddenStep: 16,
		MaxHidden:  80,
	}
}

// vitActivations are the searchable transformer activations of Table 5.
var vitActivations = []string{"relu", "swish", "gelu", "squared_relu"}

// ViTSpace couples a ViT/hybrid baseline with its search space.
type ViTSpace struct {
	Config ViTConfig
	Space  *Space
	// Hybrid reports whether the space includes the convolutional stem
	// decisions.
	Hybrid bool
}

// NewTransformerSpace constructs the pure transformer search space of
// Table 5 (per block: hidden size, low rank, activation, sequence pooling,
// Primer option, layer count). It can be "used in isolation to search for
// pure VIT or transformer based NLP models".
func NewTransformerSpace(cfg ViTConfig) *ViTSpace {
	s := NewSpace("tfm/" + cfg.Name)
	addTransformerDecisions(s, cfg)
	return &ViTSpace{Config: cfg, Space: s}
}

// NewHybridViTSpace constructs the hybrid search space: the transformer
// decisions plus the convolutional-stem decisions (patch size, initial
// resolution, and the conv search space for each conv stage).
func NewHybridViTSpace(cfg ViTConfig) *ViTSpace {
	s := NewSpace("vit/" + cfg.Name)
	for i, st := range cfg.ConvStages {
		p := fmt.Sprintf("conv%d_", i)
		s.Add(NewLabeledDecision(p+"type", []string{"mbconv", "fused_mbconv"}, []float64{0, 1}))
		s.Add(NewDecision(p+"kernel", 3, 5, 7))
		s.Add(NewDecision(p+"stride", 1, 2, 4))
		s.Add(NewDecision(p+"expansion", 1, 3, 4, 6))
		s.Add(NewLabeledDecision(p+"act", []string{"relu", "swish"}, []float64{0, 1}))
		s.Add(NewLabeledDecision(p+"reshape", []string{"none", "space_to_depth", "space_to_batch"}, []float64{0, 1, 2}))
		s.Add(NewDecision(p+"se_ratio", seRatios...))
		s.Add(NewLabeledDecision(p+"skip", []string{"none", "identity"}, []float64{0, 1}))
		s.Add(NewDecision(p+"depth", depthDeltas...))
		s.Add(NewDecision(p+"width", offsets(st.Width, cfg.WidthStep, -5, 5, 8)...))
	}
	s.Add(NewDecision("patch_size", patchSizes...))
	s.Add(NewDecision("resolution", vitResolutions()...))
	addTransformerDecisions(s, cfg)
	return &ViTSpace{Config: cfg, Space: s, Hybrid: true}
}

func addTransformerDecisions(s *Space, cfg ViTConfig) {
	for i := range cfg.Blocks {
		p := fmt.Sprintf("tfm%d_", i)
		s.Add(NewDecision(p+"hidden", hiddenSizes(cfg)...))
		s.Add(NewDecision(p+"lowrank", lowRankFractions...))
		s.Add(NewLabeledDecision(p+"act", vitActivations, []float64{0, 1, 2, 3}))
		s.Add(NewLabeledDecision(p+"seqpool", []string{"no", "yes"}, []float64{0, 1}))
		s.Add(NewLabeledDecision(p+"primer", []string{"no", "yes"}, []float64{0, 1}))
		s.Add(NewDecision(p+"layers", depthDeltas...))
	}
}

// ViTArch is a decoded transformer / hybrid architecture.
type ViTArch struct {
	Resolution int
	PatchSize  int
	ConvBlocks []arch.MBConvSpec
	ConvDepths []int
	TFMBlocks  []arch.TransformerSpec
}

// Decode maps an assignment onto a ViTArch.
func (v *ViTSpace) Decode(a Assignment) ViTArch {
	if err := v.Space.Validate(a); err != nil {
		panic(err)
	}
	cfg := v.Config
	out := ViTArch{Resolution: cfg.Resolution, PatchSize: cfg.PatchSize}
	if v.Hybrid {
		out.Resolution = int(v.Space.Value(a, "resolution"))
		out.PatchSize = int(v.Space.Value(a, "patch_size"))
		for i, st := range cfg.ConvStages {
			p := fmt.Sprintf("conv%d_", i)
			depth := st.Depth + int(v.Space.Value(a, p+"depth"))
			if depth < 1 {
				depth = 1
			}
			act := "relu"
			if v.Space.Value(a, p+"act") == 1 {
				act = "swish"
			}
			out.ConvBlocks = append(out.ConvBlocks, arch.MBConvSpec{
				Name:      fmt.Sprintf("conv%d", i),
				Fused:     v.Space.Value(a, p+"type") == 1,
				Out:       int(v.Space.Value(a, p+"width")),
				Kernel:    int(v.Space.Value(a, p+"kernel")),
				Stride:    int(v.Space.Value(a, p+"stride")),
				Expansion: int(v.Space.Value(a, p+"expansion")),
				SERatio:   v.Space.Value(a, p+"se_ratio"),
				Act:       act,
				Batch:     cfg.Batch,
				DType:     cfg.DType,
			})
			out.ConvDepths = append(out.ConvDepths, depth)
		}
	}
	for i, blk := range cfg.Blocks {
		p := fmt.Sprintf("tfm%d_", i)
		layers := blk.Layers + int(v.Space.Value(a, p+"layers"))
		if layers < 1 {
			layers = 1
		}
		out.TFMBlocks = append(out.TFMBlocks, arch.TransformerSpec{
			Name:     fmt.Sprintf("tfm%d", i),
			Hidden:   int(v.Space.Value(a, p+"hidden")),
			Heads:    blk.Heads,
			FFNRatio: blk.FFNRatio,
			LowRank:  v.Space.Value(a, p+"lowrank"),
			Act:      vitActivations[int(v.Space.Value(a, p+"act"))],
			SeqPool:  v.Space.Value(a, p+"seqpool") == 1,
			Primer:   v.Space.Value(a, p+"primer") == 1,
			Layers:   layers,
			Batch:    cfg.Batch,
			DType:    cfg.DType,
		})
	}
	return out
}

// BaselineAssignment returns the assignment reproducing the baseline.
func (v *ViTSpace) BaselineAssignment() Assignment {
	a := make(Assignment, len(v.Space.Decisions))
	pick := func(name string, want float64) {
		i := v.Space.Lookup(name)
		best, bestDiff := 0, math.Inf(1)
		for j, val := range v.Space.Decisions[i].Values {
			if d := math.Abs(val - want); d < bestDiff {
				best, bestDiff = j, d
			}
		}
		a[i] = best
	}
	cfg := v.Config
	if v.Hybrid {
		for i, st := range cfg.ConvStages {
			p := fmt.Sprintf("conv%d_", i)
			pick(p+"type", 0)
			pick(p+"kernel", float64(st.Kernel))
			pick(p+"stride", float64(st.Stride))
			pick(p+"expansion", float64(st.Expansion))
			pick(p+"act", 1)
			pick(p+"reshape", 0)
			pick(p+"se_ratio", st.SERatio)
			pick(p+"skip", 1)
			pick(p+"depth", 0)
			pick(p+"width", float64(st.Width))
		}
		pick("patch_size", float64(cfg.PatchSize))
		pick("resolution", float64(cfg.Resolution))
	}
	for i, blk := range cfg.Blocks {
		p := fmt.Sprintf("tfm%d_", i)
		pick(p+"hidden", float64(blk.Hidden))
		pick(p+"lowrank", 1)
		pick(p+"act", 2) // gelu baseline
		pick(p+"seqpool", 0)
		pick(p+"primer", 0)
		pick(p+"layers", 0)
	}
	return a
}

// Graph expands a decoded hybrid/transformer model into its operator
// graph: conv stem and stages, patchification, transformer blocks, and
// classifier head.
func (v *ViTSpace) Graph(ar ViTArch) *arch.Graph {
	cfg := v.Config
	b, dt := cfg.Batch, cfg.DType
	g := &arch.Graph{Name: cfg.Name, Batch: b, DTypeBytes: dt}

	res := ar.Resolution
	in := 3
	h := res
	var params float64
	if len(ar.ConvBlocks) > 0 {
		g.Add(arch.ConvOp("stem", b, res, res, 3, cfg.StemWidth, 3, 2, dt))
		params += float64(3*3*3*cfg.StemWidth + cfg.StemWidth)
		h = (res + 1) / 2
		in = cfg.StemWidth
		for i := range ar.ConvBlocks {
			spec := ar.ConvBlocks[i]
			for layer := 0; layer < ar.ConvDepths[i]; layer++ {
				ls := spec
				ls.Name = fmt.Sprintf("conv%d/l%d", i, layer)
				ls.In = in
				ls.H, ls.W = h, h
				if layer > 0 {
					ls.Stride = 1
					ls.In = spec.Out
				}
				for _, op := range ls.Ops() {
					g.Add(op)
					params += op.ParamBytes / float64(dt)
				}
				hh, _, cc := ls.OutShape()
				h, in = hh, cc
			}
		}
	}
	// Patchify whatever spatial extent remains into a token sequence.
	patch := ar.PatchSize
	if patch < 1 {
		patch = 1
	}
	seq := (h / patch) * (h / patch)
	if seq < 1 {
		seq = 1
	}
	firstHidden := cfg.Blocks[0].Hidden
	if len(ar.TFMBlocks) > 0 {
		firstHidden = ar.TFMBlocks[0].Hidden
	}
	g.Add(arch.ConvOp("patchify", b, h, h, in, firstHidden, patch, patch, dt))
	params += float64(patch*patch*in*firstHidden + firstHidden)

	hidden := firstHidden
	for i := range ar.TFMBlocks {
		blk := ar.TFMBlocks[i]
		blk.Seq = seq
		if blk.Hidden != hidden {
			// Width transition between blocks.
			g.Add(arch.DenseOp(fmt.Sprintf("tfm%d/transition", i), b*seq, hidden, blk.Hidden, dt))
			params += float64(hidden*blk.Hidden + blk.Hidden)
			hidden = blk.Hidden
		}
		for _, op := range blk.Ops() {
			g.Add(op)
			params += op.ParamBytes / float64(dt) * op.Repeat()
		}
		seq = blk.OutSeq()
	}
	g.Add(arch.PoolOp("token_pool", b*seq*hidden, b*hidden, dt))
	g.Add(arch.DenseOp("classifier", b, hidden, cfg.NumClasses, dt))
	params += float64(hidden*cfg.NumClasses + cfg.NumClasses)
	g.Params = params
	return g
}
