package supernet

import (
	"testing"

	"h2onas/internal/nn"
	"h2onas/internal/tensor"
)

// TestSteadyStateStepZeroMatrixAllocs is the allocation gate for the hot
// path: once the per-shard arena and the optimizer moments are warm, a
// full search step — replica forward/backward, gradient reduction, clip,
// Adam, gradient clear — must perform zero heap allocations. The data
// plane (batch synthesis) is excluded by pre-drawing the batch; real
// steps draw fresh batches, which is the pipeline's (prefetched,
// off-hot-path) job.
func TestSteadyStateStepZeroMatrixAllocs(t *testing.T) {
	ds, master, stream := newSmall(t, 7)
	rng := tensor.NewRNG(9)
	replica := master.Replicate(rng.Split())
	arena := tensor.NewArena()
	replica.SetArena(arena)
	defer func() {
		replica.SetArena(nil)
		arena.Release()
		arena.Drain()
	}()
	opt := nn.NewAdam(0.003)
	spine := nn.NewSpine(master.Params(), opt, 10)
	batch := stream.NextBatch(32)
	// Alternate two assignments so the gate also covers the buffer-shape
	// churn of switching candidates, not just a perfectly static subnet.
	a1 := randomAssignment(ds, rng)
	a2 := randomAssignment(ds, rng)
	replicaParams := [][]*nn.Param{replica.Params()}

	// The α-before-W phase latch is one-way per batch, so the reused batch
	// skips UseForArch/UseForWeights — they are bookkeeping, not compute,
	// and the search loop (not this gate) owns that invariant.
	step := func(a []int) {
		_, dout := replica.Loss(a, batch)
		replica.Backward(dout)
		spine.Reduce(replicaParams)
		spine.ClipStep()
	}
	// Warm: arena pools fill, Adam lazily allocates moments for every
	// param both assignments touch.
	for i := 0; i < 3; i++ {
		step(a1)
		step(a2)
	}

	before := tensor.MatrixAllocs()
	allocs := testing.AllocsPerRun(10, func() {
		step(a1)
		step(a2)
	})
	if d := tensor.MatrixAllocs() - before; d != 0 {
		t.Fatalf("steady-state step allocated %d matrices, want 0", d)
	}
	if allocs != 0 {
		t.Fatalf("steady-state step made %.1f heap allocations per run, want 0", allocs)
	}
}

// TestWarmupStepZeroMatrixAllocs extends the allocation gate to the
// warmup schedule. Warmup steps differ from steady state in which
// sub-networks they train — every even shard runs the maximal (sandwich)
// candidate, so warmup steps alternate the largest buffers in the space
// with sampled ones — not in which machinery they run on. The arena,
// worker pool and *Into kernels must absorb that shape churn exactly as
// they absorb steady state: after a warm-up of the pools, a
// maximal+sampled step pair performs zero heap and zero matrix-pool
// allocations. (Warmup wall-time is dominated by the maximal candidate's
// arithmetic — see docs/PERFORMANCE.md — not by allocation.)
func TestWarmupStepZeroMatrixAllocs(t *testing.T) {
	ds, master, stream := newSmall(t, 8)
	rng := tensor.NewRNG(10)
	replica := master.Replicate(rng.Split())
	arena := tensor.NewArena()
	replica.SetArena(arena)
	defer func() {
		replica.SetArena(nil)
		arena.Release()
		arena.Drain()
	}()
	opt := nn.NewAdam(0.003)
	spine := nn.NewSpine(master.Params(), opt, 10)
	batch := stream.NextBatch(32)

	// The maximal candidate every warmup sandwich shard trains: argmax of
	// each decision's values (mirrors core.MaxAssignment, which lives
	// above this package).
	maxA := make([]int, len(ds.Space.Decisions))
	for i, d := range ds.Space.Decisions {
		for j := 1; j < len(d.Values); j++ {
			if d.Values[j] > d.Values[maxA[i]] {
				maxA[i] = j
			}
		}
	}
	sampled := randomAssignment(ds, rng)
	replicaParams := [][]*nn.Param{replica.Params()}

	step := func(a []int) {
		_, dout := replica.Loss(a, batch)
		replica.Backward(dout)
		spine.Reduce(replicaParams)
		spine.ClipStep()
	}
	for i := 0; i < 3; i++ {
		step(maxA)
		step(sampled)
	}

	before := tensor.MatrixAllocs()
	allocs := testing.AllocsPerRun(10, func() {
		step(maxA)
		step(sampled)
	})
	if d := tensor.MatrixAllocs() - before; d != 0 {
		t.Fatalf("warmup step allocated %d matrices, want 0", d)
	}
	if allocs != 0 {
		t.Fatalf("warmup step made %.1f heap allocations per run, want 0", allocs)
	}
}
