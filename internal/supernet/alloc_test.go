package supernet

import (
	"testing"

	"h2onas/internal/nn"
	"h2onas/internal/tensor"
)

// TestSteadyStateStepZeroMatrixAllocs is the allocation gate for the hot
// path: once the per-shard arena and the optimizer moments are warm, a
// full search step — replica forward/backward, gradient reduction, clip,
// Adam, gradient clear — must perform zero heap allocations. The data
// plane (batch synthesis) is excluded by pre-drawing the batch; real
// steps draw fresh batches, which is the pipeline's (prefetched,
// off-hot-path) job.
func TestSteadyStateStepZeroMatrixAllocs(t *testing.T) {
	ds, master, stream := newSmall(t, 7)
	rng := tensor.NewRNG(9)
	replica := master.Replicate(rng.Split())
	arena := tensor.NewArena()
	replica.SetArena(arena)
	defer func() {
		replica.SetArena(nil)
		arena.Release()
		arena.Drain()
	}()
	opt := nn.NewAdam(0.003)
	spine := nn.NewSpine(master.Params(), opt, 10)
	batch := stream.NextBatch(32)
	// Alternate two assignments so the gate also covers the buffer-shape
	// churn of switching candidates, not just a perfectly static subnet.
	a1 := randomAssignment(ds, rng)
	a2 := randomAssignment(ds, rng)
	replicaParams := [][]*nn.Param{replica.Params()}

	// The α-before-W phase latch is one-way per batch, so the reused batch
	// skips UseForArch/UseForWeights — they are bookkeeping, not compute,
	// and the search loop (not this gate) owns that invariant.
	step := func(a []int) {
		_, dout := replica.Loss(a, batch)
		replica.Backward(dout)
		spine.Reduce(replicaParams)
		spine.ClipStep()
	}
	// Warm: arena pools fill, Adam lazily allocates moments for every
	// param both assignments touch.
	for i := 0; i < 3; i++ {
		step(a1)
		step(a2)
	}

	before := tensor.MatrixAllocs()
	allocs := testing.AllocsPerRun(10, func() {
		step(a1)
		step(a2)
	})
	if d := tensor.MatrixAllocs() - before; d != 0 {
		t.Fatalf("steady-state step allocated %d matrices, want 0", d)
	}
	if allocs != 0 {
		t.Fatalf("steady-state step made %.1f heap allocations per run, want 0", allocs)
	}
}
