package supernet

import (
	"testing"

	"h2onas/internal/tensor"
)

func TestWeightsStateLoadWeightsRoundTrip(t *testing.T) {
	_, sn, _ := newSmall(t, 1)
	saved := sn.WeightsState()

	// Scribble over every parameter, then restore.
	for _, p := range sn.Params() {
		for i := range p.Value.Data {
			p.Value.Data[i] = -7
		}
	}
	if err := sn.LoadWeights(saved); err != nil {
		t.Fatal(err)
	}
	for i, p := range sn.Params() {
		for j := range p.Value.Data {
			if p.Value.Data[j] != saved[i][j] {
				t.Fatalf("param %d value %d not restored", i, j)
			}
		}
	}
}

// TestLoadWeightsPropagatesToReplicas pins the property resume depends
// on: replicas share parameter storage with the master, so restoring the
// master restores every replica in place.
func TestLoadWeightsPropagatesToReplicas(t *testing.T) {
	_, sn, _ := newSmall(t, 2)
	rng := tensor.NewRNG(3)
	replica := sn.Replicate(rng)
	saved := sn.WeightsState()
	for i := range saved {
		for j := range saved[i] {
			saved[i][j] = float64(i) + float64(j)/1000
		}
	}
	if err := sn.LoadWeights(saved); err != nil {
		t.Fatal(err)
	}
	for i, p := range replica.Params() {
		for j := range p.Value.Data {
			if p.Value.Data[j] != saved[i][j] {
				t.Fatalf("replica param %d value %d did not see restored weights", i, j)
			}
		}
	}
}

func TestLoadWeightsRejectsShapeMismatchAtomically(t *testing.T) {
	_, sn, _ := newSmall(t, 4)
	before := sn.WeightsState()

	if err := sn.LoadWeights(before[:len(before)-1]); err == nil {
		t.Fatal("wrong parameter count accepted")
	}
	bad := sn.WeightsState()
	bad[len(bad)-1] = append(bad[len(bad)-1], 0) // one extra value in the last tensor
	if err := sn.LoadWeights(bad); err == nil {
		t.Fatal("wrong parameter length accepted")
	}
	// Rejected loads must leave the network untouched — even when only a
	// late parameter mismatches.
	after := sn.WeightsState()
	for i := range before {
		for j := range before[i] {
			if before[i][j] != after[i][j] {
				t.Fatalf("param %d changed by a rejected load", i)
			}
		}
	}
}
