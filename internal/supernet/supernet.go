// Package supernet implements the first weight-sharing super-network for
// DLRM on RL-based one-shot NAS (Section 5.1.2, Figure 3). Sharing is
// hybrid:
//
//   - ① fine-grained over embedding widths: one vocab×maxWidth table per
//     (feature, vocabulary) pair; smaller widths reuse the leading columns.
//   - ② coarse-grained over vocabulary sizes: each vocabulary option gets
//     its own table, avoiding harmful interaction between candidates that
//     fold ids differently (a FineVocab option exists for ablating this
//     choice — see VocabSharing).
//   - ③ fine-grained over MLP widths: one maxIn×maxOut matrix per layer
//     slot; smaller candidates use the upper-left sub-matrix.
//   - ④ fine-grained over low-rank factorization: shared U/V factors per
//     layer slot; rank r reuses the first r columns/rows.
//
// A candidate architecture (a space.Assignment) selects a sub-network;
// Forward/Backward train only that sub-network's weights, exactly as if
// the rest were masked to zero.
package supernet

import (
	"fmt"
	"math"

	"h2onas/internal/datapipe"
	"h2onas/internal/nn"
	"h2onas/internal/space"
	"h2onas/internal/tensor"
)

// mlpSlot is one MLP layer slot implementing Figure 3's fine-grained
// sharing for MLP layers (③/④): a single pair of shared low-rank factors
// sized for the largest width and the full rank, from which every
// candidate selects its (in, out, rank) sub-factors. The rank sweep of
// Table 5 includes 10/10 — full rank — so the unfactorized candidate is
// the factorized path at maximal rank; a single shared parameterization
// keeps every rank candidate's weights inside every other candidate's
// gradient flow (splitting full-rank weights into a separate matrix
// starves whichever path is sampled less).
type mlpSlot struct {
	low *nn.LowRankDense

	maxIn, maxOut int
}

// Supernet is the weight-sharing super-network for a DLRM search space.
type Supernet struct {
	DS   *space.DLRMSpace
	opts Options

	// tables[t][v] is feature t's embedding table for vocabulary option v.
	tables [][]*nn.Embedding

	bottom []*mlpSlot
	top    []*mlpSlot
	logit  *nn.MaskedDense

	maxEmbWidth  int
	maxBottomOut int
	concatWidth  int

	params []*nn.Param

	// arena, when set via SetArena, owns every intermediate matrix of a
	// forward/backward pass; Forward releases it on entry, so the
	// previous pass's buffers are recycled instead of garbage-collected.
	arena *tensor.Arena

	// vocabIdx[t] is the decision index of emb<t>_vocab, resolved once.
	vocabIdx []int

	// f32 switches Forward/Backward to float32 activation storage; see
	// supernet32.go.
	f32 bool

	// acts is the pool of reusable activation layers; lastActs is the
	// per-pass view of the ones actually used, consumed by Backward.
	acts []*nn.ActivationLayer

	// caches from the last Forward, consumed by Backward.
	lastAssignment space.Assignment
	lastArch       space.DLRMArch
	lastBatch      *datapipe.Batch
	lastActs       []*nn.ActivationLayer
	lastBottomOut  int
}

// VocabSharing selects how vocabulary-size candidates share embedding
// weights (the ② choice of Figure 3).
type VocabSharing int

const (
	// CoarseVocab gives every vocabulary option its own table — the
	// paper's choice, avoiding harmful interaction between candidates
	// that fold ids differently, at the cost of each table seeing only
	// its share of the traffic.
	CoarseVocab VocabSharing = iota
	// FineVocab shares one max-vocabulary table across all options;
	// smaller vocabularies fold ids modulo their size. Every option
	// trains the same rows (more gradient per row) but folded candidates
	// write colliding updates into rows other candidates read — the
	// interference the paper's design avoids. Kept for the ablation.
	FineVocab
)

// Options configures super-network construction.
type Options struct {
	VocabSharing VocabSharing
}

// New builds the super-network sized for the largest candidate in every
// decision of the space, with the paper's default sharing choices.
func New(ds *space.DLRMSpace, rng *tensor.RNG) *Supernet {
	return NewWithOptions(ds, rng, Options{})
}

// NewWithOptions builds the super-network with explicit sharing choices.
func NewWithOptions(ds *space.DLRMSpace, rng *tensor.RNG, opts Options) *Supernet {
	cfg := ds.Config
	s := &Supernet{DS: ds, opts: opts}

	s.maxEmbWidth = maxOption(ds.Space, "emb0_width")
	for t := 0; t < cfg.NumTables; t++ {
		widthDec := fmt.Sprintf("emb%d_width", t)
		if w := maxOption(ds.Space, widthDec); w != s.maxEmbWidth {
			panic("supernet: per-table max widths must agree")
		}
		vocabDec := ds.Space.Decisions[ds.Space.Lookup(fmt.Sprintf("emb%d_vocab", t))]
		if opts.VocabSharing == FineVocab {
			maxVocab := 0
			for _, v := range vocabDec.Values {
				if int(v) > maxVocab {
					maxVocab = int(v)
				}
			}
			s.tables = append(s.tables, []*nn.Embedding{nn.NewEmbedding(maxVocab, s.maxEmbWidth, rng.Split())})
			continue
		}
		row := make([]*nn.Embedding, len(vocabDec.Values))
		for v, vocab := range vocabDec.Values {
			row[v] = nn.NewEmbedding(int(vocab), s.maxEmbWidth, rng.Split())
		}
		s.tables = append(s.tables, row)
	}

	buildSlots := func(prefix string, n, firstIn int) []*mlpSlot {
		slots := make([]*mlpSlot, n)
		in := firstIn
		for i := 0; i < n; i++ {
			out := maxOption(ds.Space, fmt.Sprintf("%s%d_width", prefix, i))
			maxRank := min(in, out)
			slots[i] = &mlpSlot{
				low:    nn.NewLowRankDense(in, out, maxRank, rng.Split()),
				maxIn:  in,
				maxOut: out,
			}
			// Every slot after the first is fed through the preceding
			// slot's ReLU, and its dX goes straight back into that ReLU's
			// mask — the backward pass can skip dead columns. Slot 0's dX
			// has other consumers (raw features, the concat scatter).
			if i > 0 {
				slots[i].low.SetReLUInput(true)
			}
			in = out
		}
		return slots
	}
	s.bottom = buildSlots("bottom", ds.MaxBottomLayers(), cfg.NumDense)
	// The searched depth can stop at any slot, so the bottom output slot in
	// the concat layout must fit the widest of them.
	for _, slot := range s.bottom {
		if slot.maxOut > s.maxBottomOut {
			s.maxBottomOut = slot.maxOut
		}
	}
	// The concat layout is fixed: [bottom slot | one slot per table], each
	// at its maximum width, zero-padded when a candidate uses less. The
	// zero padding is what implements input-side masking for the top MLP.
	s.concatWidth = s.maxBottomOut + cfg.NumTables*s.maxEmbWidth
	s.top = buildSlots("top", ds.MaxTopLayers(), s.concatWidth)
	maxTopOut := 0
	for _, slot := range s.top {
		if slot.maxOut > maxTopOut {
			maxTopOut = slot.maxOut
		}
	}
	s.logit = nn.NewMaskedDense(maxTopOut, 1, rng.Split())

	for _, row := range s.tables {
		for _, e := range row {
			s.params = append(s.params, e.Params()...)
		}
	}
	for _, slot := range append(append([]*mlpSlot{}, s.bottom...), s.top...) {
		s.params = append(s.params, slot.low.Params()...)
	}
	s.params = append(s.params, s.logit.Params()...)

	s.vocabIdx = make([]int, cfg.NumTables)
	for t := 0; t < cfg.NumTables; t++ {
		s.vocabIdx[t] = ds.Space.Lookup(fmt.Sprintf("emb%d_vocab", t))
	}
	return s
}

// SetArena threads a per-shard arena through every layer of the
// super-network. All intermediates of a pass — including the logits and
// loss gradient — become arena-owned: they stay valid through Backward
// and are recycled by the next Forward on this super-network. Callers
// that retain outputs across steps must Clone them. Pass nil to revert
// to per-call heap allocation.
func (s *Supernet) SetArena(a *tensor.Arena) {
	s.arena = a
	for _, row := range s.tables {
		for _, e := range row {
			e.Arena = a
		}
	}
	for _, slot := range s.bottom {
		slot.low.Arena = a
	}
	for _, slot := range s.top {
		slot.low.Arena = a
	}
	s.logit.Arena = a
	for _, act := range s.acts {
		act.Arena = a
	}
}

// SetWorkers threads an intra-pass parallelism bound through every layer
// of the super-network, mirroring SetArena. The bound is one shard's
// share of the search's core budget (sched.Budget.PerShard for replicas,
// the full budget for the coordinator-exclusive master passes); it is a
// performance knob only — every layer's parallel path is bit-identical
// to its serial loop, so the setting never changes a trajectory. 0 or 1
// keeps the historical serial layer loops.
func (s *Supernet) SetWorkers(n int) {
	for _, row := range s.tables {
		for _, e := range row {
			e.Workers = n
		}
	}
	for _, slot := range s.bottom {
		slot.low.Workers = n
	}
	for _, slot := range s.top {
		slot.low.Workers = n
	}
	s.logit.Workers = n
}

// Params returns every shared parameter in a stable order.
func (s *Supernet) Params() []*nn.Param { return s.params }

// Options returns the sharing choices the super-network was built with,
// so a remote transport can hand a worker everything it needs to build a
// structurally identical replica.
func (s *Supernet) Options() Options { return s.opts }

// ConcatWidth returns the fixed concatenated-feature width.
func (s *Supernet) ConcatWidth() int { return s.concatWidth }

// WeightsState returns a copy of every shared parameter's values in
// Params() order — the super-network payload of a search checkpoint.
func (s *Supernet) WeightsState() [][]float64 {
	out := make([][]float64, len(s.params))
	for i, p := range s.params {
		out[i] = append([]float64(nil), p.Value.Data...)
	}
	return out
}

// LoadWeights copies values exported by WeightsState into the shared
// parameters. The copy is in place, so replicas sharing storage with this
// super-network see the restored values too. Mismatched shapes are
// rejected before anything is applied.
func (s *Supernet) LoadWeights(w [][]float64) error {
	if len(w) != len(s.params) {
		return fmt.Errorf("supernet: checkpoint has %d parameter tensors, super-network has %d", len(w), len(s.params))
	}
	for i, p := range s.params {
		if len(w[i]) != len(p.Value.Data) {
			return fmt.Errorf("supernet: parameter %d (%s) has %d values in the checkpoint, super-network has %d",
				i, p.Name, len(w[i]), len(p.Value.Data))
		}
	}
	for i, p := range s.params {
		copy(p.Value.Data, w[i])
	}
	return nil
}

// Replicate returns a view of the super-network that shares every
// parameter *value* with s but accumulates gradients separately — one
// replica per accelerator shard, with a cross-shard gradient reduction
// after the parallel step (Section 4.2 stage 3).
func (s *Supernet) Replicate(rng *tensor.RNG) *Supernet {
	// Every replica weight is immediately replaced by the master's shared
	// storage, so the structural clone is built with a ZeroRNG — the
	// random initialization it would otherwise compute is pure waste. The
	// rng argument is retained so call sites keep consuming one Split from
	// their stream (bit-compatibility of seeded runs).
	_ = rng
	r := NewWithOptions(s.DS, tensor.ZeroRNG(), s.opts)
	for i, p := range r.params {
		p.Value = s.params[i].Value
	}
	return r
}

// ReduceGrads sums the replicas' gradients into master's (averaging by
// replica count), then clears the replicas' gradients. It is the
// cross-shard gradient update of the parallel search step, delegating to
// the shared nn.ReduceParamGrads reference (Dirty-aware: untouched
// embedding tables and depth-sweep slots — most of a step's parameter
// bytes — are skipped). The search loop itself uses nn.Spine, the
// parallel bit-identical equivalent, over the same param lists.
func ReduceGrads(master *Supernet, replicas []*Supernet) {
	rp := make([][]*nn.Param, len(replicas))
	for i, r := range replicas {
		rp[i] = r.params
	}
	nn.ReduceParamGrads(master.params, rp, nil)
}

// Forward runs the sub-network selected by the assignment over the batch
// and returns logits (batch×1). The layers cache activations; call
// Backward with the loss gradient to accumulate parameter gradients for
// the same candidate.
func (s *Supernet) Forward(a space.Assignment, batch *datapipe.Batch) *tensor.Matrix {
	if s.f32 {
		return s.forward32(a, batch)
	}
	// Recycle the previous pass's intermediates (no-op without an arena).
	// Anything the caller still holds from the last pass becomes invalid
	// here — see SetArena.
	s.arena.Release()
	s.DS.DecodeInto(a, &s.lastArch)
	ar := s.lastArch
	cfg := s.DS.Config
	n := batch.Size()

	s.lastAssignment = append(s.lastAssignment[:0], a...)
	s.lastBatch = batch
	s.lastActs = s.lastActs[:0]

	// Bottom MLP over dense features.
	x := batch.Dense
	for i, w := range ar.BottomWidths {
		x = s.runSlot(s.bottom[i], x, w, ar.BottomRanks[i])
		x = s.activate(x)
	}
	s.lastBottomOut = x.Cols

	// Concat: bottom output then one fixed-offset slot per table. The
	// zero fill is load-bearing: padding implements input-side masking.
	concat := s.arena.Get(n, s.concatWidth)
	for r := 0; r < n; r++ {
		copy(concat.Row(r)[:x.Cols], x.Row(r))
	}
	for t := 0; t < cfg.NumTables; t++ {
		w := ar.EmbWidths[t]
		if w <= 0 {
			continue
		}
		emb := s.tableFor(a, t, ar)
		emb.SetActiveWidth(w)
		out := emb.Forward(batch.Sparse[t])
		off := s.maxBottomOut + t*s.maxEmbWidth
		for r := 0; r < n; r++ {
			copy(concat.Row(r)[off:off+w], out.Row(r))
		}
	}

	// Top MLP: the first layer always sees the full concat width (the
	// zero-padded layout is the mask); deeper layers use prefix widths.
	y := concat
	for i, w := range ar.TopWidths {
		y = s.runSlot(s.top[i], y, w, ar.TopRanks[i])
		y = s.activate(y)
	}
	s.logit.SetActive(y.Cols, 1)
	return s.logit.Forward(y)
}

// runSlot runs one MLP slot at (activeIn = x.Cols, activeOut = w, rank).
func (s *Supernet) runSlot(slot *mlpSlot, x *tensor.Matrix, w, rank int) *tensor.Matrix {
	if r := min(w, x.Cols); rank > r {
		rank = r
	}
	slot.low.SetActive(x.Cols, w, rank)
	return slot.low.Forward(x)
}

func (s *Supernet) activate(x *tensor.Matrix) *tensor.Matrix {
	// Reuse pooled activation layers instead of allocating one per layer
	// per pass; lastActs tracks the ones this pass used, in order.
	i := len(s.lastActs)
	if i == len(s.acts) {
		act := nn.NewActivationLayer(nn.ReLU)
		act.Arena = s.arena
		s.acts = append(s.acts, act)
	}
	act := s.acts[i]
	s.lastActs = append(s.lastActs, act)
	return act.Forward(x)
}

// Backward propagates dLoss/dLogits through the sub-network selected by
// the last Forward, accumulating gradients on the shared parameters.
func (s *Supernet) Backward(dLogits *tensor.Matrix) {
	if s.lastBatch == nil {
		panic("supernet: Backward before Forward")
	}
	if s.f32 {
		s.backward32(dLogits)
		return
	}
	a, ar, cfg := s.lastAssignment, s.lastArch, s.DS.Config
	actIdx := len(s.lastActs) - 1

	grad := s.logit.Backward(dLogits)
	for i := len(ar.TopWidths) - 1; i >= 0; i-- {
		grad = s.lastActs[actIdx].Backward(grad)
		actIdx--
		grad = s.backSlot(s.top[i], ar.TopWidths[i], ar.TopRanks[i], grad)
	}

	// Scatter the concat gradient to the embeddings and the bottom MLP.
	n := grad.Rows
	for t := 0; t < cfg.NumTables; t++ {
		w := ar.EmbWidths[t]
		if w <= 0 {
			continue
		}
		off := s.maxBottomOut + t*s.maxEmbWidth
		eg := s.arena.GetNoZero(n, w)
		for r := 0; r < n; r++ {
			copy(eg.Row(r), grad.Row(r)[off:off+w])
		}
		s.tableFor(a, t, ar).Backward(eg)
	}
	bw := s.lastBottomOut
	bg := s.arena.GetNoZero(n, bw)
	for r := 0; r < n; r++ {
		copy(bg.Row(r), grad.Row(r)[:bw])
	}
	grad = bg
	for i := len(ar.BottomWidths) - 1; i >= 0; i-- {
		grad = s.lastActs[actIdx].Backward(grad)
		actIdx--
		grad = s.backSlot(s.bottom[i], ar.BottomWidths[i], ar.BottomRanks[i], grad)
	}
}

func (s *Supernet) backSlot(slot *mlpSlot, w, rank int, grad *tensor.Matrix) *tensor.Matrix {
	_ = w
	_ = rank
	return slot.low.Backward(grad)
}

// tableFor returns the embedding table serving table t under the
// assignment, configured for the candidate's vocabulary: the per-option
// table under coarse sharing, or the shared table with the active
// vocabulary folded under fine sharing.
func (s *Supernet) tableFor(a space.Assignment, t int, ar space.DLRMArch) *nn.Embedding {
	if s.opts.VocabSharing == FineVocab {
		emb := s.tables[t][0]
		emb.SetActiveVocab(ar.EmbVocabs[t])
		return emb
	}
	return s.tables[t][s.vocabChoice(a, t)]
}

// vocabChoice returns the selected vocabulary option index for table t.
func (s *Supernet) vocabChoice(a space.Assignment, t int) int {
	return a[s.vocabIdx[t]]
}

// Loss runs Forward and returns the BCE loss plus its logits gradient.
// With an arena set, the gradient is arena-owned: valid through Backward,
// recycled by the next Forward.
func (s *Supernet) Loss(a space.Assignment, batch *datapipe.Batch) (float64, *tensor.Matrix) {
	logits := s.Forward(a, batch)
	grad := s.arena.GetNoZero(logits.Rows, logits.Cols)
	return nn.BCEWithLogits{}.EvalInto(logits, batch.Labels, grad), grad
}

// Quality evaluates the candidate's quality signal Q(α) on the batch
// (forward only): 1 − logloss/ln 2, so predicting the uninformative 0.5
// scores 0 and a perfect predictor scores 1.
func (s *Supernet) Quality(a space.Assignment, batch *datapipe.Batch) float64 {
	loss, _ := s.Loss(a, batch)
	return 1 - loss/math.Ln2
}

// maxOption returns the largest numeric option of the named decision.
func maxOption(sp *space.Space, name string) int {
	d := sp.Decisions[sp.Lookup(name)]
	best := d.Values[0]
	for _, v := range d.Values {
		if v > best {
			best = v
		}
	}
	return int(best)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
