package supernet

import (
	"h2onas/internal/datapipe"
	"h2onas/internal/nn"
	"h2onas/internal/space"
	"h2onas/internal/tensor"
)

// Float32 activation mode for shard replicas: forward activations —
// bottom/top MLP outputs, the hidden low-rank product, the concat buffer
// and pooled embeddings — are stored float32, halving the forward
// footprint and memory traffic of every replica. Arithmetic stays
// float64 everywhere ("float64 math, float32 storage", see
// internal/nn/layers32.go): the shared master weights, all gradients and
// the optimizer state are untouched, logits stay float64, and the
// gradient half of a step is byte-for-byte the default code. The mode
// changes numerics only by the single float32 rounding each stored
// activation receives, so it carries its own golden trajectory
// (internal/core testdata/golden/float32.json).

// SetFloat32Activations toggles float32 activation storage for this
// super-network's Forward/Backward. Flip it only between full passes —
// Backward must see the mode its Forward ran under.
func (s *Supernet) SetFloat32Activations(on bool) { s.f32 = on }

// Float32Activations reports whether float32 activation storage is on.
func (s *Supernet) Float32Activations() bool { return s.f32 }

// forward32 mirrors Forward with float32 activation storage. The dense
// features are quantized once on entry; every inter-layer buffer through
// the top MLP is float32; the logit layer widens back to float64.
func (s *Supernet) forward32(a space.Assignment, batch *datapipe.Batch) *tensor.Matrix {
	s.arena.Release()
	s.DS.DecodeInto(a, &s.lastArch)
	ar := s.lastArch
	cfg := s.DS.Config
	n := batch.Size()

	s.lastAssignment = append(s.lastAssignment[:0], a...)
	s.lastBatch = batch
	s.lastActs = s.lastActs[:0]

	// Bottom MLP over dense features, quantized at the boundary.
	x := s.arena.GetNoZero32(n, batch.Dense.Cols)
	for r := 0; r < n; r++ {
		tensor.Quantize(x.Row(r), batch.Dense.Row(r))
	}
	for i, w := range ar.BottomWidths {
		x = s.runSlot32(s.bottom[i], x, w, ar.BottomRanks[i])
		x = s.activate32(x)
	}
	s.lastBottomOut = x.Cols

	// Concat: same fixed layout as Forward; the zero fill is the mask.
	concat := s.arena.Get32(n, s.concatWidth)
	for r := 0; r < n; r++ {
		copy(concat.Row(r)[:x.Cols], x.Row(r))
	}
	for t := 0; t < cfg.NumTables; t++ {
		w := ar.EmbWidths[t]
		if w <= 0 {
			continue
		}
		emb := s.tableFor(a, t, ar)
		emb.SetActiveWidth(w)
		out := emb.Forward32(batch.Sparse[t])
		off := s.maxBottomOut + t*s.maxEmbWidth
		for r := 0; r < n; r++ {
			copy(concat.Row(r)[off:off+w], out.Row(r))
		}
	}

	y := concat
	for i, w := range ar.TopWidths {
		y = s.runSlot32(s.top[i], y, w, ar.TopRanks[i])
		y = s.activate32(y)
	}
	s.logit.SetActive(y.Cols, 1)
	return s.logit.Forward32(y)
}

// runSlot32 is runSlot over float32 activations.
func (s *Supernet) runSlot32(slot *mlpSlot, x *tensor.Matrix32, w, rank int) *tensor.Matrix32 {
	if r := min(w, x.Cols); rank > r {
		rank = r
	}
	slot.low.SetActive(x.Cols, w, rank)
	return slot.low.Forward32(x)
}

// activate32 is activate over float32 activations, sharing the same
// pooled layer objects.
func (s *Supernet) activate32(x *tensor.Matrix32) *tensor.Matrix32 {
	i := len(s.lastActs)
	if i == len(s.acts) {
		act := nn.NewActivationLayer(nn.ReLU)
		act.Arena = s.arena
		s.acts = append(s.acts, act)
	}
	act := s.acts[i]
	s.lastActs = append(s.lastActs, act)
	return act.Forward32(x)
}

// backward32 mirrors Backward against a forward32 pass. Gradients are
// float64 end to end — only the layers' cached activations differ — so
// the embedding scatter and the gradient plumbing are the same code shape
// as Backward.
func (s *Supernet) backward32(dLogits *tensor.Matrix) {
	a, ar, cfg := s.lastAssignment, s.lastArch, s.DS.Config
	actIdx := len(s.lastActs) - 1

	grad := s.logit.Backward32(dLogits)
	for i := len(ar.TopWidths) - 1; i >= 0; i-- {
		grad = s.lastActs[actIdx].Backward32(grad)
		actIdx--
		grad = s.top[i].low.Backward32(grad)
	}

	n := grad.Rows
	for t := 0; t < cfg.NumTables; t++ {
		w := ar.EmbWidths[t]
		if w <= 0 {
			continue
		}
		off := s.maxBottomOut + t*s.maxEmbWidth
		eg := s.arena.GetNoZero(n, w)
		for r := 0; r < n; r++ {
			copy(eg.Row(r), grad.Row(r)[off:off+w])
		}
		s.tableFor(a, t, ar).Backward(eg)
	}
	bw := s.lastBottomOut
	bg := s.arena.GetNoZero(n, bw)
	for r := 0; r < n; r++ {
		copy(bg.Row(r), grad.Row(r)[:bw])
	}
	grad = bg
	for i := len(ar.BottomWidths) - 1; i >= 0; i-- {
		grad = s.lastActs[actIdx].Backward32(grad)
		actIdx--
		grad = s.bottom[i].low.Backward32(grad)
	}
}
