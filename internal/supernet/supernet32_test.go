package supernet

import (
	"math"
	"testing"

	"h2onas/internal/nn"
	"h2onas/internal/tensor"
)

// TestFloat32ForwardCloseToFloat64 checks the float32 activation mode
// computes the same function up to activation-storage rounding: logits
// from identical weights agree with the float64 path to float32-level
// relative error, and are finite across random candidates.
func TestFloat32ForwardCloseToFloat64(t *testing.T) {
	ds, sn, stream := newSmall(t, 21)
	rng := tensor.NewRNG(5)
	b := stream.NextBatch(16)
	for trial := 0; trial < 20; trial++ {
		a := randomAssignment(ds, rng)
		ref := sn.Forward(a, b).Clone()
		sn.SetFloat32Activations(true)
		got := sn.Forward(a, b)
		sn.SetFloat32Activations(false)
		for i, v := range got.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("trial %d: non-finite f32-mode logit", trial)
			}
			// A handful of float32 roundings along the deepest path; 1e-4
			// relative (vs ~6e-8 per rounding) leaves a wide margin while
			// still catching any use of the wrong weights or layout.
			if diff := math.Abs(v - ref.Data[i]); diff > 1e-4*(1+math.Abs(ref.Data[i])) {
				t.Fatalf("trial %d logit %d: f32 mode %v vs f64 %v", trial, i, v, ref.Data[i])
			}
		}
	}
}

// TestFloat32BackwardDeterministicAndGradClose runs a full loss/backward
// step in float32 mode twice from identical states, requiring bit-equal
// gradients (the mode is deterministic), and compares against the float64
// gradients loosely (same function, perturbed activations).
func TestFloat32BackwardDeterministicAndGradClose(t *testing.T) {
	ds, _, stream := newSmall(t, 22)
	b := stream.NextBatch(8)
	a := ds.BaselineAssignment()

	run := func(f32 bool) []*nn.Param {
		sn := New(ds, tensor.NewRNG(22))
		sn.SetFloat32Activations(f32)
		nn.ZeroGrads(sn.Params())
		loss, dout := sn.Loss(a, b)
		if math.IsNaN(loss) || math.IsInf(loss, 0) {
			t.Fatalf("f32=%v: non-finite loss %v", f32, loss)
		}
		sn.Backward(dout)
		return sn.Params()
	}

	g32a, g32b := run(true), run(true)
	for i := range g32a {
		if len(g32a[i].Grad.Data) != len(g32b[i].Grad.Data) {
			t.Fatalf("param %d: grad size mismatch", i)
		}
		for j := range g32a[i].Grad.Data {
			if math.Float64bits(g32a[i].Grad.Data[j]) != math.Float64bits(g32b[i].Grad.Data[j]) {
				t.Fatalf("param %d (%s) elem %d: f32 mode not deterministic", i, g32a[i].Name, j)
			}
		}
	}

	g64 := run(false)
	for i := range g64 {
		var maxAbs float64
		for _, v := range g64[i].Grad.Data {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		for j := range g64[i].Grad.Data {
			if diff := math.Abs(g32a[i].Grad.Data[j] - g64[i].Grad.Data[j]); diff > 1e-3*(1+maxAbs) {
				t.Fatalf("param %d (%s) elem %d: f32 grad %v vs f64 %v", i, g64[i].Name, j, g32a[i].Grad.Data[j], g64[i].Grad.Data[j])
			}
		}
	}
}

// TestFloat32StepZeroMatrixAllocs extends the steady-state allocation gate
// to the float32 mode: once warm, a full loss/backward pass in f32 mode
// performs no heap or matrix-pool allocations either.
func TestFloat32StepZeroMatrixAllocs(t *testing.T) {
	ds, sn, stream := newSmall(t, 23)
	arena := tensor.NewArena()
	sn.SetArena(arena)
	sn.SetFloat32Activations(true)
	a := ds.BaselineAssignment()
	b := stream.NextBatch(16)

	step := func() {
		loss, dout := sn.Loss(a, b)
		_ = loss
		sn.Backward(dout)
		nn.ZeroGrads(sn.Params())
	}
	for i := 0; i < 3; i++ {
		step()
	}
	before := tensor.MatrixAllocs()
	if avg := testing.AllocsPerRun(10, step); avg != 0 {
		t.Fatalf("f32 steady-state step allocates %.1f times per run", avg)
	}
	if diff := tensor.MatrixAllocs() - before; diff != 0 {
		t.Fatalf("f32 steady-state step performed %d matrix allocations", diff)
	}
}
