package supernet

import (
	"math"
	"testing"

	"h2onas/internal/datapipe"
	"h2onas/internal/nn"
	"h2onas/internal/space"
	"h2onas/internal/tensor"
)

func newSmall(t *testing.T, seed uint64) (*space.DLRMSpace, *Supernet, *datapipe.Stream) {
	t.Helper()
	ds := space.NewDLRMSpace(space.SmallDLRMConfig())
	sn := New(ds, tensor.NewRNG(seed))
	stream := datapipe.NewStream(datapipe.CTRConfig{
		NumTables: ds.Config.NumTables,
		Vocab:     ds.Config.BaseVocab,
		NumDense:  ds.Config.NumDense,
	}, seed)
	return ds, sn, stream
}

func randomAssignment(ds *space.DLRMSpace, rng *tensor.RNG) space.Assignment {
	a := make(space.Assignment, len(ds.Space.Decisions))
	for i, d := range ds.Space.Decisions {
		a[i] = rng.Intn(d.Arity())
	}
	return a
}

func TestForwardShape(t *testing.T) {
	ds, sn, stream := newSmall(t, 1)
	b := stream.NextBatch(16)
	logits := sn.Forward(ds.BaselineAssignment(), b)
	if logits.Rows != 16 || logits.Cols != 1 {
		t.Fatalf("logits shape %dx%d", logits.Rows, logits.Cols)
	}
}

func TestForwardAnyCandidate(t *testing.T) {
	ds, sn, stream := newSmall(t, 2)
	rng := tensor.NewRNG(99)
	b := stream.NextBatch(8)
	for trial := 0; trial < 30; trial++ {
		a := randomAssignment(ds, rng)
		logits := sn.Forward(a, b)
		for _, v := range logits.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("trial %d: non-finite logit for %s", trial, ds.Space.Describe(a))
			}
		}
	}
}

func TestBackwardTouchesOnlyActiveSubnetwork(t *testing.T) {
	ds, sn, stream := newSmall(t, 3)
	b := stream.NextBatch(8)
	// A candidate that removes table 0 (width 0).
	a := ds.BaselineAssignment()
	wIdx := ds.Space.Lookup("emb0_width")
	zero := -1
	for j, v := range ds.Space.Decisions[wIdx].Values {
		if v == 0 {
			zero = j
		}
	}
	if zero < 0 {
		t.Fatal("small config must allow width 0 (table removal)")
	}
	a[wIdx] = zero

	nn.ZeroGrads(sn.Params())
	loss, dout := sn.Loss(a, b)
	if math.IsNaN(loss) {
		t.Fatal("loss NaN")
	}
	sn.Backward(dout)
	// Every table-0 embedding must have zero gradient.
	for v, e := range sn.tables[0] {
		if tensor.MaxAbs(e.Table.Grad) != 0 {
			t.Fatalf("removed table 0 (vocab option %d) received gradient", v)
		}
	}
	// The selected vocab option of table 1 must have gradient; others not.
	choice := sn.vocabChoice(a, 1)
	if tensor.MaxAbs(sn.tables[1][choice].Table.Grad) == 0 {
		t.Fatal("active table 1 received no gradient")
	}
	for v, e := range sn.tables[1] {
		if v != choice && tensor.MaxAbs(e.Table.Grad) != 0 {
			t.Fatalf("inactive vocab option %d of table 1 received gradient (coarse sharing violated)", v)
		}
	}
}

func TestGradCheckThroughSupernet(t *testing.T) {
	ds, sn, stream := newSmall(t, 4)
	b := stream.NextBatch(4)
	rng := tensor.NewRNG(5)
	a := randomAssignment(ds, rng)

	nn.ZeroGrads(sn.Params())
	_, dout := sn.Loss(a, b)
	sn.Backward(dout)

	// Numerically check a handful of touched parameters.
	const eps = 1e-6
	checked := 0
	for _, p := range sn.Params() {
		if tensor.MaxAbs(p.Grad) == 0 {
			continue
		}
		// Pick the largest-gradient element of this parameter.
		idx, best := 0, 0.0
		for i, g := range p.Grad.Data {
			if math.Abs(g) > best {
				idx, best = i, math.Abs(g)
			}
		}
		orig := p.Value.Data[idx]
		p.Value.Data[idx] = orig + eps
		up, _ := sn.Loss(a, b)
		p.Value.Data[idx] = orig - eps
		down, _ := sn.Loss(a, b)
		p.Value.Data[idx] = orig
		num := (up - down) / (2 * eps)
		if math.Abs(num-p.Grad.Data[idx]) > 1e-4*math.Max(1, math.Abs(num)) {
			t.Fatalf("param %s grad[%d]: analytic %v vs numeric %v", p.Name, idx, p.Grad.Data[idx], num)
		}
		checked++
		if checked >= 8 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no parameters received gradient")
	}
}

func TestTrainingImprovesQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("single-threaded training loop; nothing for the race detector here")
	}
	ds, sn, stream := newSmall(t, 6)
	a := ds.BaselineAssignment()
	opt := nn.NewAdam(0.003)
	eval := stream.NextBatch(512)
	before := sn.Quality(a, eval)
	for step := 0; step < 60; step++ {
		b := stream.NextBatch(128)
		nn.ZeroGrads(sn.Params())
		_, dout := sn.Loss(a, b)
		sn.Backward(dout)
		opt.Step(sn.Params())
	}
	after := sn.Quality(a, stream.NextBatch(512))
	if after <= before+0.02 {
		t.Fatalf("training did not improve quality: %v → %v", before, after)
	}
}

func TestWiderEmbeddingsLearnMoreSignal(t *testing.T) {
	// The architecture/quality dependence the search exploits: on the
	// memorization-heavy task, candidates with wider embeddings should
	// reach better quality than candidates with all tables removed.
	ds, sn, stream := newSmall(t, 7)
	wide := ds.BaselineAssignment()
	narrow := append(space.Assignment(nil), wide...)
	for i := 0; i < ds.Config.NumTables; i++ {
		idx := ds.Space.Lookup("emb" + itoa(i) + "_width")
		for j, v := range ds.Space.Decisions[idx].Values {
			if v == 0 {
				narrow[idx] = j
			}
		}
	}
	opt := nn.NewAdam(0.003)
	train := func(a space.Assignment, steps int) float64 {
		for step := 0; step < steps; step++ {
			b := stream.NextBatch(128)
			nn.ZeroGrads(sn.Params())
			_, dout := sn.Loss(a, b)
			sn.Backward(dout)
			opt.Step(sn.Params())
		}
		return sn.Quality(a, stream.NextBatch(1024))
	}
	qWide := train(wide, 120)
	qNarrow := train(narrow, 120)
	if qWide <= qNarrow {
		t.Fatalf("wide embeddings (%v) must beat no embeddings (%v) on a memorization task", qWide, qNarrow)
	}
}

func TestReplicateSharesValuesNotGrads(t *testing.T) {
	ds, sn, stream := newSmall(t, 8)
	rng := tensor.NewRNG(9)
	rep := sn.Replicate(rng)
	// Values are aliased.
	sn.Params()[0].Value.Data[0] = 42
	if rep.Params()[0].Value.Data[0] != 42 {
		t.Fatal("replica must share parameter values")
	}
	// Gradients are independent.
	b := stream.NextBatch(8)
	a := ds.BaselineAssignment()
	_, dout := rep.Loss(a, b)
	rep.Backward(dout)
	var repHasGrad bool
	for _, p := range rep.Params() {
		if tensor.MaxAbs(p.Grad) > 0 {
			repHasGrad = true
		}
	}
	if !repHasGrad {
		t.Fatal("replica backward produced no gradient")
	}
	for _, p := range sn.Params() {
		if tensor.MaxAbs(p.Grad) != 0 {
			t.Fatal("master gradients must stay clear until reduction")
		}
	}
}

func TestReduceGradsAverages(t *testing.T) {
	ds, sn, stream := newSmall(t, 10)
	rng := tensor.NewRNG(11)
	r1, r2 := sn.Replicate(rng), sn.Replicate(rng)
	b := stream.NextBatch(8)
	a := ds.BaselineAssignment()
	for _, r := range []*Supernet{r1, r2} {
		_, dout := r.Loss(a, b)
		r.Backward(dout)
	}
	// Same batch and candidate → identical grads; the average equals each.
	want := r1.Params()[len(r1.Params())-1].Grad.Clone()
	ReduceGrads(sn, []*Supernet{r1, r2})
	got := sn.Params()[len(sn.Params())-1].Grad
	if !tensor.Equal(got, want, 1e-9) {
		t.Fatal("ReduceGrads must average replica gradients")
	}
	// Replicas are cleared for the next step.
	if tensor.MaxAbs(r1.Params()[0].Grad) != 0 {
		t.Fatal("replica grads must be cleared after reduction")
	}
}

func TestQualityOfUninformativePredictorIsZeroish(t *testing.T) {
	ds, sn, stream := newSmall(t, 12)
	b := stream.NextBatch(256)
	q := sn.Quality(ds.BaselineAssignment(), b)
	// Untrained network ≈ random logits near zero → quality near 0.
	if q > 0.3 || q < -1 {
		t.Fatalf("untrained quality = %v, want near 0", q)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
