package supernet

import (
	"fmt"
	"math"
	"testing"

	"h2onas/internal/datapipe"
	"h2onas/internal/nn"
	"h2onas/internal/space"
	"h2onas/internal/tensor"
)

func newFine(seed uint64) (*space.DLRMSpace, *Supernet, *datapipe.Stream) {
	ds := space.NewDLRMSpace(space.SmallDLRMConfig())
	sn := NewWithOptions(ds, tensor.NewRNG(seed), Options{VocabSharing: FineVocab})
	stream := datapipe.NewStream(datapipe.CTRConfig{
		NumTables: ds.Config.NumTables,
		Vocab:     ds.Config.BaseVocab,
		NumDense:  ds.Config.NumDense,
	}, seed)
	return ds, sn, stream
}

func TestFineVocabSingleTablePerFeature(t *testing.T) {
	_, sn, _ := newFine(1)
	for tIdx, row := range sn.tables {
		if len(row) != 1 {
			t.Fatalf("feature %d has %d tables under fine sharing, want 1", tIdx, len(row))
		}
	}
	// And far fewer parameters than the coarse variant.
	ds := space.NewDLRMSpace(space.SmallDLRMConfig())
	coarse := New(ds, tensor.NewRNG(1))
	if len(sn.Params()) >= len(coarse.Params()) {
		t.Fatal("fine sharing must have fewer parameter tensors than coarse")
	}
}

func TestFineVocabForwardBackward(t *testing.T) {
	ds, sn, stream := newFine(2)
	rng := tensor.NewRNG(3)
	for trial := 0; trial < 15; trial++ {
		a := randomAssignment(ds, rng)
		b := stream.NextBatch(8)
		nn.ZeroGrads(sn.Params())
		loss, dout := sn.Loss(a, b)
		if math.IsNaN(loss) {
			t.Fatalf("trial %d: NaN loss", trial)
		}
		sn.Backward(dout)
		for _, p := range sn.Params() {
			for _, g := range p.Grad.Data {
				if math.IsNaN(g) || math.IsInf(g, 0) {
					t.Fatalf("trial %d: non-finite grad in %s", trial, p.Name)
				}
			}
		}
	}
}

func TestFineVocabFoldsIndices(t *testing.T) {
	ds, sn, stream := newFine(4)
	// A candidate at the smallest vocabulary: indices beyond it must fold
	// onto the leading rows, so rows past the active vocabulary of the
	// shared table receive no gradient from that candidate.
	a := ds.BaselineAssignment()
	for i := 0; i < ds.Config.NumTables; i++ {
		idx := ds.Space.Lookup(fmt.Sprintf("emb%d_vocab", i))
		a[idx] = 0 // 50% of baseline
	}
	ar := ds.Decode(a)
	smallVocab := ar.EmbVocabs[0]

	b := stream.NextBatch(32)
	nn.ZeroGrads(sn.Params())
	_, dout := sn.Loss(a, b)
	sn.Backward(dout)
	table := sn.tables[0][0].Table
	for row := smallVocab; row < table.Grad.Rows; row++ {
		for _, g := range table.Grad.Row(row) {
			if g != 0 {
				t.Fatalf("row %d beyond active vocab %d received gradient", row, smallVocab)
			}
		}
	}
}

func TestFineVocabReplicatePreservesMode(t *testing.T) {
	_, sn, stream := newFine(5)
	rep := sn.Replicate(tensor.NewRNG(6))
	for tIdx, row := range rep.tables {
		if len(row) != 1 {
			t.Fatalf("replica feature %d lost fine sharing", tIdx)
		}
	}
	// Values aliased, mode preserved, forward works.
	ds := rep.DS
	b := stream.NextBatch(4)
	logits := rep.Forward(ds.BaselineAssignment(), b)
	if logits.Rows != 4 {
		t.Fatal("replica forward broken")
	}
}

func TestFineVocabTrainsOnTask(t *testing.T) {
	ds, sn, stream := newFine(7)
	a := ds.BaselineAssignment()
	opt := nn.NewAdam(0.003)
	before := sn.Quality(a, stream.NextBatch(512))
	for step := 0; step < 80; step++ {
		b := stream.NextBatch(128)
		nn.ZeroGrads(sn.Params())
		_, dout := sn.Loss(a, b)
		sn.Backward(dout)
		nn.ClipGradNorm(sn.Params(), 10)
		opt.Step(sn.Params())
	}
	after := sn.Quality(a, stream.NextBatch(512))
	if after <= before+0.02 {
		t.Fatalf("fine-sharing supernet failed to train: %v → %v", before, after)
	}
}
