package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// The naive references here pin bit-exact equality, not tolerance: the
// textbook triple loop (naiveMatMul in tensor_test.go) accumulates each
// output element as a single ascending-k chain, exactly the per-element
// order the production kernels promise. Zero a-elements contribute +0
// just like the kernels' av == 0 skip (x + 0 == x for every finite x,
// and round-to-nearest never yields a -0 running sum from these inputs).

func naiveMatMulTransA(a, b *Matrix) *Matrix {
	out := New(a.Cols, b.Cols)
	for i := 0; i < a.Cols; i++ {
		for j := 0; j < b.Cols; j++ {
			s := 0.0
			for k := 0; k < a.Rows; k++ {
				s += a.At(k, i) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

// naiveMatMulTransB mirrors dotGeneric's four-accumulator contract: a
// plain running sum would round differently, and MatMulTransB's contract
// is the dot kernel, not a single chain.
func naiveMatMulTransB(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			var s0, s1, s2, s3 float64
			k := 0
			for ; k+3 < a.Cols; k += 4 {
				s0 += a.At(i, k) * b.At(j, k)
				s1 += a.At(i, k+1) * b.At(j, k+1)
				s2 += a.At(i, k+2) * b.At(j, k+2)
				s3 += a.At(i, k+3) * b.At(j, k+3)
			}
			for ; k < a.Cols; k++ {
				s0 += a.At(i, k) * b.At(j, k)
			}
			out.Set(i, j, s0+s1+s2+s3)
		}
	}
	return out
}

func fillRand(m *Matrix, rng *rand.Rand, sparsity float64) {
	for i := range m.Data {
		if rng.Float64() < sparsity {
			m.Data[i] = 0 // exercise the av == 0 skip
		} else {
			m.Data[i] = rng.NormFloat64()
		}
	}
}

func requireBitEqual(t *testing.T, name string, got, want *Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d != %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range got.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("%s: element %d: %x != %x (%v vs %v)", name,
				i, math.Float64bits(got.Data[i]), math.Float64bits(want.Data[i]),
				got.Data[i], want.Data[i])
		}
	}
}

// TestBlockedKernelsBitIdentical pins the central numeric claim of the
// blocked kernels: for every shape — below or above the blocking
// threshold, straddling block boundaries, degenerate 1×N / N×1, rows of
// zeros triggering the av == 0 skip — the production kernels produce
// bit-for-bit the naive reference result. Shapes above blockMinElems take
// the blocked code path (forced single-threaded range calls cover the
// worker-sharded split points too).
func TestBlockedKernelsBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("large shapes are slow in -short mode")
	}
	rng := rand.New(rand.NewSource(7))
	type shape struct{ m, k, n int }
	shapes := []shape{
		{1, 1, 1},
		{1, 17, 1},
		{1, 64, 512}, // 1×N row vector
		{64, 1, 64},  // inner dim 1
		{5, 3, 7},
		{16, 64, 160},                 // DLRM step shapes
		{64, 160, 64},                 //
		{63, 65, 1023},                // straddles blockK=64 and blockJ=1024
		{65, 127, 1025},               //
		{8, 300, 600},                 // b = 180k elems > blockMinElems ⇒ blocked
		{4, blockK + 1, blockJ*2 + 3}, // multiple j panels, ragged k panel
	}
	for _, s := range shapes {
		a := New(s.m, s.k)
		b := New(s.k, s.n)
		fillRand(a, rng, 0.2)
		fillRand(b, rng, 0.05)
		// One all-zero row of a (when it exists) exercises a full run of
		// av == 0 skips.
		if s.m > 1 {
			zr := a.Row(s.m / 2)
			for j := range zr {
				zr[j] = 0
			}
		}

		out := New(s.m, s.n)
		MatMulInto(a, b, out)
		requireBitEqual(t, "MatMulInto", out, naiveMatMul(a, b))

		// a is k×m for the transA form: aᵀ·b is m×n.
		at := New(s.k, s.m)
		fillRand(at, rng, 0.2)
		outTA := New(s.m, s.n)
		MatMulTransAInto(at, b, outTA)
		requireBitEqual(t, "MatMulTransAInto", outTA, naiveMatMulTransA(at, b))

		// b is n×k for the transB form: a·bᵀ is m×n.
		bt := New(s.n, s.k)
		fillRand(bt, rng, 0.05)
		outTB := New(s.m, s.n)
		MatMulTransBInto(a, bt, outTB)
		requireBitEqual(t, "MatMulTransBInto", outTB, naiveMatMulTransB(a, bt))
	}
}

// TestBlockedRangeSplitsBitIdentical drives the row-range kernels directly
// at arbitrary split points (as the worker pool does) on a
// blocking-threshold shape, checking each split reproduces the full-range
// result bit-for-bit.
func TestBlockedRangeSplitsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// n is sized so even the full-range transACols panel (m·n ≈ 196k elems)
	// crosses blockMinElems and takes the blocked path.
	const m, k, n = 24, 200, 8192
	a := New(m, k)
	b := New(k, n)
	fillRand(a, rng, 0.1)
	fillRand(b, rng, 0)

	want := New(m, n)
	matmulRows(a, b, want, 0, m)
	for _, split := range []int{1, 7, m - 1} {
		got := New(m, n)
		matmulRows(a, b, got, 0, split)
		matmulRows(a, b, got, split, m)
		requireBitEqual(t, "matmulRows split", got, want)
	}

	at := New(k, m)
	fillRand(at, rng, 0.1)
	wantTA := New(m, n)
	transACols(at, b, wantTA, 0, m)
	for _, split := range []int{1, 7, m - 1} {
		got := New(m, n)
		transACols(at, b, got, 0, split)
		transACols(at, b, got, split, m)
		requireBitEqual(t, "transACols split", got, wantTA)
	}

	bt := New(n, k)
	fillRand(bt, rng, 0)
	wantTB := New(m, n)
	transBRows(a, bt, wantTB, 0, m)
	for _, split := range []int{1, 7, m - 1} {
		got := New(m, n)
		transBRows(a, bt, got, 0, split)
		transBRows(a, bt, got, split, m)
		requireBitEqual(t, "transBRows split", got, wantTB)
	}
}
