package tensor

import (
	"fmt"
	"testing"
)

// Kernel benchmarks at the shapes the small-DLRM search step actually
// runs: batch 64 against top-MLP sized operands. Run with -benchmem to
// see the allocation profile; the *Into/arena variants must report
// 0 allocs/op in steady state.

func benchMatrices(rows, inner, cols int) (*Matrix, *Matrix) {
	rng := NewRNG(1)
	return RandN(rows, inner, 1, rng), RandN(inner, cols, 1, rng)
}

func BenchmarkMatMul(b *testing.B) {
	for _, shape := range [][3]int{{64, 160, 64}, {64, 64, 64}, {256, 256, 256}} {
		b.Run(fmt.Sprintf("%dx%dx%d", shape[0], shape[1], shape[2]), func(b *testing.B) {
			x, w := benchMatrices(shape[0], shape[1], shape[2])
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = MatMul(x, w)
			}
		})
	}
}

func BenchmarkMatMulTransA(b *testing.B) {
	rng := NewRNG(2)
	x := RandN(64, 160, 1, rng) // batch×in
	g := RandN(64, 64, 1, rng)  // batch×out
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MatMulTransA(x, g)
	}
}

func BenchmarkMatMulTransB(b *testing.B) {
	rng := NewRNG(2)
	g := RandN(64, 64, 1, rng)
	w := RandN(160, 64, 1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MatMulTransB(g, w)
	}
}

// benchShapes are the allocation-free *Into benchmark shapes. The DLRM
// entries are the small-DLRM search step's real operand sizes (batch 64
// against bottom/top-MLP weights); the vit entries are ViT-Base token
// mixing shapes (196 patch tokens × 768 hidden), whose weight operand
// crosses blockMinElems so the cache-blocked path is what gets measured.
var benchShapes = []struct {
	name    string
	m, k, n int
}{
	{"dlrm/64x160x64", 64, 160, 64},
	{"dlrm/64x64x64", 64, 64, 64},
	{"dlrm/16x64x160", 16, 64, 160},
	{"vit/196x768x768", 196, 768, 768},
	{"vit/196x768x3072", 196, 768, 3072},
}

func BenchmarkMatMulInto(b *testing.B) {
	for _, s := range benchShapes {
		b.Run(s.name, func(b *testing.B) {
			x, w := benchMatrices(s.m, s.k, s.n)
			out := New(s.m, s.n)
			b.SetBytes(int64(8 * (s.m*s.k + s.k*s.n + s.m*s.n))) // compulsory traffic: read A+B, write C
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulInto(x, w, out)
			}
		})
	}
}

func BenchmarkMatMulTransAInto(b *testing.B) {
	// Aᵀ·B at backward shapes: x is batch×in, g is batch×out, the
	// product is the in×out weight gradient.
	for _, s := range benchShapes {
		b.Run(s.name, func(b *testing.B) {
			rng := NewRNG(2)
			x := RandN(s.m, s.k, 1, rng)
			g := RandN(s.m, s.n, 1, rng)
			out := New(s.k, s.n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulTransAInto(x, g, out)
			}
		})
	}
}

func BenchmarkMatMulTransBInto(b *testing.B) {
	// G·Wᵀ at backward shapes: g is batch×out, w is in×out, the product
	// is the batch×in input gradient.
	for _, s := range benchShapes {
		b.Run(s.name, func(b *testing.B) {
			rng := NewRNG(2)
			g := RandN(s.m, s.n, 1, rng)
			w := RandN(s.k, s.n, 1, rng)
			out := New(s.m, s.k)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulTransBInto(g, w, out)
			}
		})
	}
}

// BenchmarkAxpy measures the innermost kernel alone, at the row widths
// the masked/low-rank layers stream through it (DLRM MLP widths and
// ViT hidden widths). This is the kernel the h2ofast build tag
// vectorizes; compare the two backends with
//
//	go test ./internal/tensor -bench Axpy
//	go test -tags h2ofast ./internal/tensor -bench Axpy
func BenchmarkAxpy(b *testing.B) {
	for _, n := range []int{64, 160, 768, 3072} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			rng := NewRNG(4)
			dst := make([]float64, n)
			src := make([]float64, n)
			for i := range src {
				src[i] = rng.Norm()
			}
			b.SetBytes(int64(8 * 3 * n)) // read dst+src, write dst
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Axpy(dst, 0.0001, src)
			}
		})
	}
}

func BenchmarkMatVec(b *testing.B) {
	rng := NewRNG(3)
	a := RandN(256, 256, 1, rng)
	x := make([]float64, 256)
	for i := range x {
		x[i] = rng.Norm()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MatVec(a, x)
	}
}
