package tensor

import (
	"fmt"
	"testing"
)

// Kernel benchmarks at the shapes the small-DLRM search step actually
// runs: batch 64 against top-MLP sized operands. Run with -benchmem to
// see the allocation profile; the *Into/arena variants must report
// 0 allocs/op in steady state.

func benchMatrices(rows, inner, cols int) (*Matrix, *Matrix) {
	rng := NewRNG(1)
	return RandN(rows, inner, 1, rng), RandN(inner, cols, 1, rng)
}

func BenchmarkMatMul(b *testing.B) {
	for _, shape := range [][3]int{{64, 160, 64}, {64, 64, 64}, {256, 256, 256}} {
		b.Run(fmt.Sprintf("%dx%dx%d", shape[0], shape[1], shape[2]), func(b *testing.B) {
			x, w := benchMatrices(shape[0], shape[1], shape[2])
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = MatMul(x, w)
			}
		})
	}
}

func BenchmarkMatMulTransA(b *testing.B) {
	rng := NewRNG(2)
	x := RandN(64, 160, 1, rng) // batch×in
	g := RandN(64, 64, 1, rng)  // batch×out
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MatMulTransA(x, g)
	}
}

func BenchmarkMatMulTransB(b *testing.B) {
	rng := NewRNG(2)
	g := RandN(64, 64, 1, rng)
	w := RandN(160, 64, 1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MatMulTransB(g, w)
	}
}

func BenchmarkMatVec(b *testing.B) {
	rng := NewRNG(3)
	a := RandN(256, 256, 1, rng)
	x := make([]float64, 256)
	for i := range x {
		x[i] = rng.Norm()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MatVec(a, x)
	}
}
