//go:build !h2ofast

package tensor

// Default build: the inner kernels are the scalar reference loops. The
// one-line dispatchers inline away, so the default path pays nothing for
// the backend seam. Build with -tags h2ofast (see kernels_h2ofast_*.go)
// to swap in the AVX2 backend, which preserves the same per-element
// accumulation sequence (see kernels_generic.go for the contract).

func axpyUnrolled(dst []float64, s float64, src []float64) { axpyGeneric(dst, s, src) }

func dotUnrolled(a, b []float64) float64 { return dotGeneric(a, b) }

func fusedAxpyDot(g, w, gw []float64, x float64) float64 { return fusedGeneric(g, w, gw, x) }

// KernelBackend names the inner-kernel backend compiled into this binary:
// "scalar" for the default reference build.
func KernelBackend() string { return "scalar" }
