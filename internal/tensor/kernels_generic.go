package tensor

// The scalar reference kernels. These define the numeric contract of the
// whole system: every backend — the default build, the h2ofast build, the
// parallel matmul shards — must produce results bit-identical to these
// loops, because the committed golden trajectories, checkpoint resume and
// multi-node determinism all pin the exact rounding sequence.
//
// The contract, per kernel:
//
//   - axpy: dst[j] += s·src[j]. Each element receives exactly one
//     round(mul) then one round(add); elements are independent, so any
//     vectorization across j is bit-identical by construction.
//   - dot: four parallel accumulators s0..s3 where s_l sums the elements
//     with index ≡ l (mod 4) in ascending order, the tail (indices ≥
//     len&^3) folds into s0 in ascending order, and the final reduction
//     is ((s0+s1)+s2)+s3. A vector backend must map lane l to s_l.
//   - fused axpy+dot: per element j, s_{j mod 4} += g[j]·w[j] and
//     gw[j] += g[j]·x. The two chains are independent per element, so a
//     backend may reorder between them but not within either.
//
// The generic bodies live here untagged so every build (including
// h2ofast, which falls back below its vector-length threshold or on CPUs
// without AVX2) links the same reference code.

// axpyGeneric computes dst[j] += s*src[j], 4 elements per iteration.
// Each dst element still receives exactly the same sequence of adds as
// the scalar loop, so results are bit-identical.
func axpyGeneric(dst []float64, s float64, src []float64) {
	n := len(dst)
	src = src[:n] // bounds-check elimination hint
	j := 0
	for ; j+3 < n; j += 4 {
		dst[j] += s * src[j]
		dst[j+1] += s * src[j+1]
		dst[j+2] += s * src[j+2]
		dst[j+3] += s * src[j+3]
	}
	for ; j < n; j++ {
		dst[j] += s * src[j]
	}
}

// dotGeneric returns Σ a[k]·b[k] using four parallel accumulators. The
// accumulation order is fixed (deterministic) but differs from a single
// running sum.
func dotGeneric(a, b []float64) float64 {
	var s0, s1, s2, s3 float64
	n := len(a)
	b = b[:n] // bounds-check elimination hint
	k := 0
	for ; k+3 < n; k += 4 {
		s0 += a[k] * b[k]
		s1 += a[k+1] * b[k+1]
		s2 += a[k+2] * b[k+2]
		s3 += a[k+3] * b[k+3]
	}
	for ; k < n; k++ {
		s0 += a[k] * b[k]
	}
	return s0 + s1 + s2 + s3
}

// fusedGeneric is the shared inner kernel of the masked/low-rank backward
// passes: it accumulates gw[j] += g[j]·x and returns Σ g[j]·w[j], 4-wide
// unrolled. The gradient accumulation order per element is unchanged from
// the scalar loop; the returned dot uses four parallel accumulators in a
// fixed (deterministic) order.
func fusedGeneric(g, w, gw []float64, x float64) float64 {
	n := len(g)
	w = w[:n]
	gw = gw[:n]
	var s0, s1, s2, s3 float64
	j := 0
	for ; j+3 < n; j += 4 {
		g0, g1, g2, g3 := g[j], g[j+1], g[j+2], g[j+3]
		s0 += g0 * w[j]
		gw[j] += g0 * x
		s1 += g1 * w[j+1]
		gw[j+1] += g1 * x
		s2 += g2 * w[j+2]
		gw[j+2] += g2 * x
		s3 += g3 * w[j+3]
		gw[j+3] += g3 * x
	}
	for ; j < n; j++ {
		gv := g[j]
		s0 += gv * w[j]
		gw[j] += gv * x
	}
	return s0 + s1 + s2 + s3
}

// Axpy computes dst[j] += s·src[j] with per-element order preserved. It is
// the building block the hand-written layer kernels in internal/nn share
// with the matmul kernels here.
func Axpy(dst []float64, s float64, src []float64) { axpyUnrolled(dst, s, src) }

// Dot returns Σ a[k]·b[k] with four parallel accumulators (deterministic
// fixed order; see dotGeneric).
func Dot(a, b []float64) float64 { return dotUnrolled(a, b) }

// FusedAxpyDot accumulates gw[j] += g[j]·x and returns Σ g[j]·w[j] in one
// traversal — the backward-pass workhorse of the masked and low-rank
// layers (dW row update fused with the dX dot). Accumulation order is the
// fixed reference order documented on fusedGeneric.
func FusedAxpyDot(g, w, gw []float64, x float64) float64 { return fusedAxpyDot(g, w, gw, x) }
