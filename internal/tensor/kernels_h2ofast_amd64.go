//go:build h2ofast

package tensor

// h2ofast backend, amd64: the inner kernels run as hand-written AVX2
// assembly (kernels_h2ofast_amd64.s). The vectorization is bit-exact, not
// merely tolerance-close: it vectorizes only across independent output
// elements and never uses FMA, so every element receives exactly the
// reference sequence of round(mul)/round(add) operations documented in
// kernels_generic.go. Concretely:
//
//   - axpy: a 4-lane VMULPD+VADDPD per group of four elements performs,
//     per element, one rounded multiply and one rounded add — identical
//     to the scalar loop (Go never contracts mul+add to FMA on its own).
//   - dot / fused: a single 4-lane accumulator register stepped 4
//     elements at a time makes vector lane l exactly the reference
//     accumulator s_l (indices ≡ l mod 4, ascending). The wrapper folds
//     the tail into s0 and reduces ((s0+s1)+s2)+s3, as the reference
//     does. Two-register unrolls would interleave lanes mod 8 and break
//     the mapping — do not "optimize" this without updating the contract.
//
// Because the backend is bit-exact, the cross-check test asserts exact
// equality (tolerance zero), and the golden trajectories replay
// identically under -tags h2ofast; CI's kernels-accel leg proves both.
//
// CPUs without AVX2 (or an OS that doesn't enable YMM state) fall back to
// the generic loops at runtime, as do vectors shorter than the dispatch
// threshold, where call overhead would exceed the vector win.

// useAVX2 gates the assembly kernels on runtime CPU support: AVX2 plus
// OS-enabled YMM state (OSXSAVE + XCR0). GOAMD64=v3 guarantees this at
// process start, but the tag must also be safe on a plain build.
var useAVX2 = cpuSupportsAVX2()

// avxMinLen is the vector length below which dispatch stays on the
// generic loops: the wrapper + VZEROUPPER overhead needs a few groups of
// four to amortize.
const avxMinLen = 16

//go:noescape
func axpyAVX(dst, src *float64, n int, s float64)

//go:noescape
func dotAVX(a, b *float64, n int, sums *float64)

//go:noescape
func fusedAVX(grad, w, gw *float64, n int, x float64, sums *float64)

//go:noescape
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbv0() (eax, edx uint32)

func cpuSupportsAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	// The OS must have enabled XMM (bit 1) and YMM (bit 2) state saving.
	xlo, _ := xgetbv0()
	if xlo&0x6 != 0x6 {
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	return b7&(1<<5) != 0 // AVX2
}

func axpyUnrolled(dst []float64, s float64, src []float64) {
	n := len(dst)
	if !useAVX2 || n < avxMinLen {
		axpyGeneric(dst, s, src)
		return
	}
	src = src[:n]
	n4 := n &^ 3
	axpyAVX(&dst[0], &src[0], n4, s)
	for j := n4; j < n; j++ {
		dst[j] += s * src[j]
	}
}

func dotUnrolled(a, b []float64) float64 {
	n := len(a)
	if !useAVX2 || n < avxMinLen {
		return dotGeneric(a, b)
	}
	b = b[:n]
	n4 := n &^ 3
	var sums [4]float64
	dotAVX(&a[0], &b[0], n4, &sums[0])
	s0 := sums[0]
	for k := n4; k < n; k++ {
		s0 += a[k] * b[k]
	}
	return ((s0 + sums[1]) + sums[2]) + sums[3]
}

func fusedAxpyDot(g, w, gw []float64, x float64) float64 {
	n := len(g)
	if !useAVX2 || n < avxMinLen {
		return fusedGeneric(g, w, gw, x)
	}
	w = w[:n]
	gw = gw[:n]
	n4 := n &^ 3
	var sums [4]float64
	fusedAVX(&g[0], &w[0], &gw[0], n4, x, &sums[0])
	s0 := sums[0]
	for j := n4; j < n; j++ {
		gv := g[j]
		s0 += gv * w[j]
		gw[j] += gv * x
	}
	return ((s0 + sums[1]) + sums[2]) + sums[3]
}

// KernelBackend names the inner-kernel backend compiled into this binary.
func KernelBackend() string {
	if useAVX2 {
		return "h2ofast-avx2"
	}
	return "h2ofast-generic"
}
