//go:build h2ofast

#include "textflag.h"

// The AVX2 inner kernels of the h2ofast backend. Bit-exactness contract
// (see kernels_h2ofast_amd64.go): vectorize only across independent
// output elements, never use FMA, keep the dot/fused accumulator as a
// single YMM register stepped four elements per iteration so lane l is
// exactly the reference accumulator s_l.
//
// All lengths are in float64 elements and must be multiples of 4; the Go
// wrappers handle tails. Loads/stores are unaligned (VMOVUPD): slice
// bases are 8-byte aligned only.

// func axpyAVX(dst, src *float64, n int, s float64)
// dst[j] += s*src[j] for j in [0, n).
TEXT ·axpyAVX(SB), NOSPLIT, $0-32
	MOVQ         dst+0(FP), DI
	MOVQ         src+8(FP), SI
	MOVQ         n+16(FP), CX
	VBROADCASTSD s+24(FP), Y0

axpy8:
	CMPQ    CX, $8
	JLT     axpy4
	VMOVUPD (SI), Y1
	VMOVUPD 32(SI), Y2
	VMULPD  Y0, Y1, Y1
	VMULPD  Y0, Y2, Y2
	VADDPD  (DI), Y1, Y1
	VADDPD  32(DI), Y2, Y2
	VMOVUPD Y1, (DI)
	VMOVUPD Y2, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	SUBQ    $8, CX
	JMP     axpy8

axpy4:
	CMPQ    CX, $4
	JLT     axpydone
	VMOVUPD (SI), Y1
	VMULPD  Y0, Y1, Y1
	VADDPD  (DI), Y1, Y1
	VMOVUPD Y1, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $4, CX
	JMP     axpy4

axpydone:
	VZEROUPPER
	RET

// func dotAVX(a, b *float64, n int, sums *float64)
// sums[l] = Σ_{k ≡ l mod 4, k < n} a[k]*b[k], ascending k per lane.
// Single accumulator register: lane l is the reference accumulator s_l.
TEXT ·dotAVX(SB), NOSPLIT, $0-32
	MOVQ   a+0(FP), SI
	MOVQ   b+8(FP), DX
	MOVQ   n+16(FP), CX
	MOVQ   sums+24(FP), DI
	VXORPD Y0, Y0, Y0

dot4:
	CMPQ    CX, $4
	JLT     dotdone
	VMOVUPD (SI), Y1
	VMULPD  (DX), Y1, Y1
	VADDPD  Y1, Y0, Y0
	ADDQ    $32, SI
	ADDQ    $32, DX
	SUBQ    $4, CX
	JMP     dot4

dotdone:
	VMOVUPD Y0, (DI)
	VZEROUPPER
	RET

// func fusedAVX(grad, w, gw *float64, n int, x float64, sums *float64)
// sums[l] accumulates grad[k]*w[k] over k ≡ l mod 4 (ascending), and
// gw[k] += grad[k]*x per element — the fused backward kernel. (The first
// argument is named grad because `g` is a reserved pseudo-register.)
TEXT ·fusedAVX(SB), NOSPLIT, $0-48
	MOVQ         grad+0(FP), SI
	MOVQ         w+8(FP), DX
	MOVQ         gw+16(FP), DI
	MOVQ         n+24(FP), CX
	VBROADCASTSD x+32(FP), Y3
	MOVQ         sums+40(FP), BX
	VXORPD       Y0, Y0, Y0

fused4:
	CMPQ    CX, $4
	JLT     fuseddone
	VMOVUPD (SI), Y1
	VMULPD  (DX), Y1, Y2
	VADDPD  Y2, Y0, Y0
	VMULPD  Y3, Y1, Y1
	VADDPD  (DI), Y1, Y1
	VMOVUPD Y1, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DX
	ADDQ    $32, DI
	SUBQ    $4, CX
	JMP     fused4

fuseddone:
	VMOVUPD Y0, (BX)
	VZEROUPPER
	RET

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL  eaxIn+0(FP), AX
	MOVL  ecxIn+4(FP), CX
	CPUID
	MOVL  AX, eax+8(FP)
	MOVL  BX, ebx+12(FP)
	MOVL  CX, ecx+16(FP)
	MOVL  DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL   CX, CX
	XGETBV
	MOVL   AX, eax+0(FP)
	MOVL   DX, edx+4(FP)
	RET
