//go:build h2ofast && !amd64

package tensor

// h2ofast on a non-amd64 target: no assembly backend exists, so the tag
// degrades to the scalar reference loops. Results are identical to the
// default build (the contract in kernels_generic.go is the same code).

func axpyUnrolled(dst []float64, s float64, src []float64) { axpyGeneric(dst, s, src) }

func dotUnrolled(a, b []float64) float64 { return dotGeneric(a, b) }

func fusedAxpyDot(g, w, gw []float64, x float64) float64 { return fusedGeneric(g, w, gw, x) }

// KernelBackend names the inner-kernel backend compiled into this binary.
func KernelBackend() string { return "h2ofast-generic" }
