package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// TestKernelBackendMatchesReference cross-checks the build-active inner
// kernels (axpyUnrolled / dotUnrolled / fusedAxpyDot) against the scalar
// reference bodies in kernels_generic.go, bit for bit — tolerance zero.
// On the default build the dispatchers ARE the reference, so this passes
// trivially; its purpose is the h2ofast build, where it proves the AVX2
// assembly honors the numeric contract (CI runs it under -tags h2ofast
// with GOAMD64=v3). Lengths cover both sides of the AVX dispatch
// threshold and every tail residue mod 4.
func TestKernelBackendMatchesReference(t *testing.T) {
	t.Logf("kernel backend: %s", KernelBackend())
	rng := rand.New(rand.NewSource(3))
	lengths := []int{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 18, 19, 31, 32, 63, 64, 100, 160, 257, 1024, 1023}
	for _, n := range lengths {
		src := make([]float64, n)
		g := make([]float64, n)
		w := make([]float64, n)
		for i := 0; i < n; i++ {
			src[i] = rng.NormFloat64()
			g[i] = rng.NormFloat64()
			w[i] = rng.NormFloat64()
		}
		if n > 2 {
			g[n/2] = 0 // zero element flows through both chains
		}
		s := rng.NormFloat64()
		x := rng.NormFloat64()

		dstGot := make([]float64, n)
		dstWant := make([]float64, n)
		for i := 0; i < n; i++ {
			v := rng.NormFloat64()
			dstGot[i] = v
			dstWant[i] = v
		}
		axpyUnrolled(dstGot, s, src)
		axpyGeneric(dstWant, s, src)
		for i := 0; i < n; i++ {
			if math.Float64bits(dstGot[i]) != math.Float64bits(dstWant[i]) {
				t.Fatalf("axpy n=%d elem %d: %v != %v", n, i, dstGot[i], dstWant[i])
			}
		}

		dg := dotUnrolled(g, w)
		dw := dotGeneric(g, w)
		if math.Float64bits(dg) != math.Float64bits(dw) {
			t.Fatalf("dot n=%d: %v (%016x) != %v (%016x)", n, dg, math.Float64bits(dg), dw, math.Float64bits(dw))
		}

		gwGot := make([]float64, n)
		gwWant := make([]float64, n)
		for i := 0; i < n; i++ {
			v := rng.NormFloat64()
			gwGot[i] = v
			gwWant[i] = v
		}
		fg := fusedAxpyDot(g, w, gwGot, x)
		fw := fusedGeneric(g, w, gwWant, x)
		if math.Float64bits(fg) != math.Float64bits(fw) {
			t.Fatalf("fused dot n=%d: %v != %v", n, fg, fw)
		}
		for i := 0; i < n; i++ {
			if math.Float64bits(gwGot[i]) != math.Float64bits(gwWant[i]) {
				t.Fatalf("fused gw n=%d elem %d: %v != %v", n, i, gwGot[i], gwWant[i])
			}
		}
	}
}

// TestKernelBackendName sanity-checks the backend self-report so CI logs
// show which path actually ran.
func TestKernelBackendName(t *testing.T) {
	switch KernelBackend() {
	case "scalar", "h2ofast-avx2", "h2ofast-generic":
	default:
		t.Fatalf("unknown kernel backend %q", KernelBackend())
	}
}
