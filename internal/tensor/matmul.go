package tensor

import "fmt"

// The matmul kernels dispatch through WorkersFor (pool.go): a kernel of
// W multiply-adds gets min(budget, W/parallelGrain) workers, so small
// products run single-threaded (fan-out costs more than it saves), big
// ones scale with their size, and the per-call workers budget — threaded
// down from the search's core-budget scheduler — caps the fan-out so
// concurrent shard workers stop oversubscribing the machine. The
// historical static parallelThreshold (serial below 1<<18 multiply-adds)
// is exactly the budget-aware policy's serial region.

// Cache-blocking parameters for the large-shape matmul paths, derived
// from the host cache model and the hwsim roofline in internal/tensor/tune
// (tune's test asserts the derivation still yields these values; the
// derivation itself is documented in docs/PERFORMANCE.md "Kernel tuning").
//
//   - blockK: k-panel height. A blockK×blockJ panel of b is re-read once
//     per output row sweep; blockK·blockJ·8 bytes ≤ L2/4 keeps it
//     L2-resident, and the roofline lower bound (operational intensity
//     ≥ the host ridge point) is already met at blockK ≥ 8.
//   - blockJ: j-panel width. An output-row segment plus a b-row segment
//     (2·blockJ·8 bytes) stay within half of L1d.
//
// Blocking engages only above blockMinElems — b (or the output panel)
// larger than half of L2 — because below that every operand is already
// cache-resident and the straight i-k-j sweep is optimal. The small-DLRM
// search step never crosses the threshold; ViT-scale and benchmark shapes
// do.
//
// Bit-identity: blocks walk k in ascending panels and each output element
// accumulates its k contributions in ascending order within a single
// chain seeded by the same zero/bias, so the blocked path is bit-identical
// to the unblocked reference (pinned by TestBlockedKernelsBitIdentical).
const (
	blockK        = 64
	blockJ        = 1024
	blockMinElems = 1 << 17 // float64 elements: 1 MB, half of L2
)

// MatMulBlockShape reports the cache-blocking parameters (k-panel height,
// j-panel width) the large-shape kernels use. internal/tensor/tune
// re-derives them from the hardware model; its test pins the agreement.
func MatMulBlockShape() (kc, jc int) { return blockK, blockJ }

// MatMul returns a·b for an (n×k) a and (k×m) b. It is MatMulInto with a
// freshly allocated output.
func MatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	MatMulInto(a, b, out)
	return out
}

// MatMulInto computes a·b into out, which must be a.Rows×b.Cols; prior
// contents of out are overwritten. out must not alias a or b.
//
// The kernel iterates in i-k-j order so the inner loop walks both the
// output row and the b row contiguously, shards output rows across the
// persistent worker pool for large products, and switches to a
// cache-blocked sweep (bit-identical; see blockK) when b outgrows L2.
// The fan-out uses the shared pool's full width; MatMulIntoN takes an
// explicit workers budget.
func MatMulInto(a, b, out *Matrix) { MatMulIntoN(a, b, out, 0) }

// MatMulIntoN is MatMulInto under an explicit workers budget: at most
// workers pool workers are used for the row fan-out (<= 0 means the
// shared pool's width). Results are bit-identical for every budget —
// output rows are computed independently, so chunk boundaries cannot
// change any bit.
func MatMulIntoN(a, b, out *Matrix, workers int) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dim mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulIntoN output %dx%d != %dx%d", out.Rows, out.Cols, a.Rows, b.Cols))
	}
	if w := WorkersFor(a.Rows*a.Cols*b.Cols, workers); w <= 1 {
		matmulRows(a, b, out, 0, a.Rows)
	} else {
		sharedPool().run(a.Rows, opMatMul, a, b, out, w)
	}
}

func matmulRows(a, b, out *Matrix, lo, hi int) {
	if b.Rows*b.Cols > blockMinElems {
		matmulRowsBlocked(a, b, out, lo, hi)
		return
	}
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := range orow {
			orow[j] = 0
		}
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			axpyUnrolled(orow, av, brow)
		}
	}
}

// matmulRowsBlocked is matmulRows for b larger than L2: k is walked in
// ascending blockK panels and j in blockJ panels, so the active
// blockK×blockJ panel of b stays L2-resident across the row sweep instead
// of b being re-streamed from memory once per output row. Ascending k
// panels preserve each output element's accumulation order exactly.
func matmulRowsBlocked(a, b, out *Matrix, lo, hi int) {
	K := a.Cols
	N := b.Cols
	for i := lo; i < hi; i++ {
		orow := out.Row(i)
		for j := range orow {
			orow[j] = 0
		}
	}
	for k0 := 0; k0 < K; k0 += blockK {
		k1 := min(k0+blockK, K)
		for j0 := 0; j0 < N; j0 += blockJ {
			j1 := min(j0+blockJ, N)
			for i := lo; i < hi; i++ {
				arow := a.Row(i)
				orow := out.Row(i)[j0:j1]
				for k := k0; k < k1; k++ {
					av := arow[k]
					if av == 0 {
						continue
					}
					axpyUnrolled(orow, av, b.Row(k)[j0:j1])
				}
			}
		}
	}
}

// MatMulTransA returns aᵀ·b for a (k×n) a and (k×m) b. It is
// MatMulTransAInto with a freshly allocated output.
func MatMulTransA(a, b *Matrix) *Matrix {
	out := New(a.Cols, b.Cols)
	MatMulTransAInto(a, b, out)
	return out
}

// MatMulTransAInto computes aᵀ·b into out (a.Cols×b.Cols) without
// materializing the transpose; prior contents of out are overwritten.
// It is the weight-gradient kernel: dW = Xᵀ·dY. out must not alias a
// or b.
func MatMulTransAInto(a, b, out *Matrix) { MatMulTransAIntoN(a, b, out, 0) }

// MatMulTransAIntoN is MatMulTransAInto under an explicit workers budget
// (<= 0 means the shared pool's width); bit-identical for every budget.
func MatMulTransAIntoN(a, b, out *Matrix, workers int) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransA outer dim mismatch %dx%d ᵀ· %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Cols || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransAInto output %dx%d != %dx%d", out.Rows, out.Cols, a.Cols, b.Cols))
	}
	// out[i][j] = Σ_k a[k][i]·b[k][j]. Accumulate row-by-row of a/b so all
	// access is contiguous; output rows are partitioned across workers for
	// large products so no two workers share an output row.
	if w := WorkersFor(a.Rows*a.Cols*b.Cols, workers); w <= 1 {
		transACols(a, b, out, 0, a.Cols)
	} else {
		sharedPool().run(a.Cols, opMatMulTransA, a, b, out, w)
	}
}

// transACols accumulates output rows [lo,hi) of aᵀ·b (i.e. columns
// [lo,hi) of a).
func transACols(a, b, out *Matrix, lo, hi int) {
	if (hi-lo)*b.Cols > blockMinElems {
		transAColsBlocked(a, b, out, lo, hi)
		return
	}
	for i := lo; i < hi; i++ {
		orow := out.Row(i)
		for j := range orow {
			orow[j] = 0
		}
	}
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i := lo; i < hi; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			axpyUnrolled(out.Row(i), av, brow)
		}
	}
}

// transAColsBlocked is transACols for output panels larger than L2: the
// unblocked form re-streams the whole (hi-lo)×N output panel once per k,
// which thrashes once it outgrows L2. Blocking j keeps the active
// (hi-lo)×blockJ output panel resident across the full k sweep, at the
// cost of re-streaming a (small, contiguous) slice of each b row per
// panel. k stays ascending inside each j panel, so per-element
// accumulation order is unchanged.
func transAColsBlocked(a, b, out *Matrix, lo, hi int) {
	N := b.Cols
	for i := lo; i < hi; i++ {
		orow := out.Row(i)
		for j := range orow {
			orow[j] = 0
		}
	}
	for j0 := 0; j0 < N; j0 += blockJ {
		j1 := min(j0+blockJ, N)
		for k := 0; k < a.Rows; k++ {
			arow := a.Row(k)
			brow := b.Row(k)[j0:j1]
			for i := lo; i < hi; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				axpyUnrolled(out.Row(i)[j0:j1], av, brow)
			}
		}
	}
}

// MatMulTransB returns a·bᵀ for an (n×k) a and (m×k) b. It is
// MatMulTransBInto with a freshly allocated output.
func MatMulTransB(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Rows)
	MatMulTransBInto(a, b, out)
	return out
}

// MatMulTransBInto computes a·bᵀ into out (a.Rows×b.Rows) without
// materializing the transpose; prior contents of out are overwritten.
// It is the input-gradient kernel: dX = dY·Wᵀ. out must not alias a
// or b.
func MatMulTransBInto(a, b, out *Matrix) { MatMulTransBIntoN(a, b, out, 0) }

// MatMulTransBIntoN is MatMulTransBInto under an explicit workers budget
// (<= 0 means the shared pool's width); bit-identical for every budget.
func MatMulTransBIntoN(a, b, out *Matrix, workers int) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dim mismatch %dx%d · %dx%dᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransBInto output %dx%d != %dx%d", out.Rows, out.Cols, a.Rows, b.Rows))
	}
	if w := WorkersFor(a.Rows*a.Cols*b.Rows, workers); w <= 1 {
		transBRows(a, b, out, 0, a.Rows)
	} else {
		sharedPool().run(a.Rows, opMatMulTransB, a, b, out, w)
	}
}

// transBRows computes output rows [lo,hi) of a·bᵀ as dot products. When b
// outgrows L2 the j (b-row) loop is tiled so a panel of b rows is reused
// across every output row before moving on — each output element is still
// one dotUnrolled call, so blocking cannot change any bit.
func transBRows(a, b, out *Matrix, lo, hi int) {
	if b.Rows*b.Cols > blockMinElems && hi-lo > 1 {
		// Panel height: as many b rows as fit in half of L2.
		jb := max(1, blockMinElems/(2*b.Cols))
		for j0 := 0; j0 < b.Rows; j0 += jb {
			j1 := min(j0+jb, b.Rows)
			for i := lo; i < hi; i++ {
				arow := a.Row(i)
				orow := out.Row(i)
				for j := j0; j < j1; j++ {
					orow[j] = dotUnrolled(arow, b.Row(j))
				}
			}
		}
		return
	}
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			orow[j] = dotUnrolled(arow, b.Row(j))
		}
	}
}

// MatVec returns a·x for an (n×k) a and length-k x.
func MatVec(a *Matrix, x []float64) []float64 {
	out := make([]float64, a.Rows)
	MatVecInto(a, x, out)
	return out
}

// MatVecInto computes a·x into out, which must have length a.Rows;
// prior contents are overwritten.
func MatVecInto(a *Matrix, x, out []float64) {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("tensor: MatVec dim mismatch %dx%d · %d", a.Rows, a.Cols, len(x)))
	}
	if len(out) != a.Rows {
		panic(fmt.Sprintf("tensor: MatVecInto output length %d != %d", len(out), a.Rows))
	}
	for i := 0; i < a.Rows; i++ {
		out[i] = dotUnrolled(a.Row(i), x)
	}
}
