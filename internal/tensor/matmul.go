package tensor

import "fmt"

// parallelThreshold is the number of multiply-adds below which the matmul
// kernels run single-threaded; worker fan-out costs more than it saves on
// small products.
const parallelThreshold = 1 << 18

// MatMul returns a·b for an (n×k) a and (k×m) b. It is MatMulInto with a
// freshly allocated output.
func MatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	MatMulInto(a, b, out)
	return out
}

// MatMulInto computes a·b into out, which must be a.Rows×b.Cols; prior
// contents of out are overwritten. out must not alias a or b.
//
// The kernel iterates in i-k-j order so the inner loop walks both the
// output row and the b row contiguously, and shards output rows across
// the persistent worker pool for large products.
func MatMulInto(a, b, out *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dim mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulInto output %dx%d != %dx%d", out.Rows, out.Cols, a.Rows, b.Cols))
	}
	if work := a.Rows * a.Cols * b.Cols; work < parallelThreshold {
		matmulRows(a, b, out, 0, a.Rows)
		return
	}
	sharedPool().run(a.Rows, opMatMul, a, b, out)
}

func matmulRows(a, b, out *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := range orow {
			orow[j] = 0
		}
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			axpyUnrolled(orow, av, brow)
		}
	}
}

// axpyUnrolled computes dst[j] += s*src[j], 4 elements per iteration.
// Each dst element still receives exactly the same sequence of adds as
// the scalar loop, so results are bit-identical.
func axpyUnrolled(dst []float64, s float64, src []float64) {
	n := len(dst)
	src = src[:n] // bounds-check elimination hint
	j := 0
	for ; j+3 < n; j += 4 {
		dst[j] += s * src[j]
		dst[j+1] += s * src[j+1]
		dst[j+2] += s * src[j+2]
		dst[j+3] += s * src[j+3]
	}
	for ; j < n; j++ {
		dst[j] += s * src[j]
	}
}

// Axpy computes dst[j] += s·src[j] over slices, 4-wide unrolled with
// per-element order preserved. It is the building block the hand-written
// layer kernels in internal/nn share with the matmul kernels here.
func Axpy(dst []float64, s float64, src []float64) { axpyUnrolled(dst, s, src) }

// Dot returns Σ a[k]·b[k] with four parallel accumulators (deterministic
// fixed order; see dotUnrolled).
func Dot(a, b []float64) float64 { return dotUnrolled(a, b) }

// MatMulTransA returns aᵀ·b for a (k×n) a and (k×m) b. It is
// MatMulTransAInto with a freshly allocated output.
func MatMulTransA(a, b *Matrix) *Matrix {
	out := New(a.Cols, b.Cols)
	MatMulTransAInto(a, b, out)
	return out
}

// MatMulTransAInto computes aᵀ·b into out (a.Cols×b.Cols) without
// materializing the transpose; prior contents of out are overwritten.
// It is the weight-gradient kernel: dW = Xᵀ·dY. out must not alias a
// or b.
func MatMulTransAInto(a, b, out *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransA outer dim mismatch %dx%d ᵀ· %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Cols || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransAInto output %dx%d != %dx%d", out.Rows, out.Cols, a.Cols, b.Cols))
	}
	// out[i][j] = Σ_k a[k][i]·b[k][j]. Accumulate row-by-row of a/b so all
	// access is contiguous; output rows are partitioned across workers for
	// large products so no two workers share an output row.
	if work := a.Rows * a.Cols * b.Cols; work < parallelThreshold {
		transACols(a, b, out, 0, a.Cols)
		return
	}
	sharedPool().run(a.Cols, opMatMulTransA, a, b, out)
}

// transACols accumulates output rows [lo,hi) of aᵀ·b (i.e. columns
// [lo,hi) of a).
func transACols(a, b, out *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		orow := out.Row(i)
		for j := range orow {
			orow[j] = 0
		}
	}
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i := lo; i < hi; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			axpyUnrolled(out.Row(i), av, brow)
		}
	}
}

// MatMulTransB returns a·bᵀ for an (n×k) a and (m×k) b. It is
// MatMulTransBInto with a freshly allocated output.
func MatMulTransB(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Rows)
	MatMulTransBInto(a, b, out)
	return out
}

// MatMulTransBInto computes a·bᵀ into out (a.Rows×b.Rows) without
// materializing the transpose; prior contents of out are overwritten.
// It is the input-gradient kernel: dX = dY·Wᵀ. out must not alias a
// or b.
func MatMulTransBInto(a, b, out *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dim mismatch %dx%d · %dx%dᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransBInto output %dx%d != %dx%d", out.Rows, out.Cols, a.Rows, b.Rows))
	}
	if work := a.Rows * a.Cols * b.Rows; work < parallelThreshold {
		transBRows(a, b, out, 0, a.Rows)
		return
	}
	sharedPool().run(a.Rows, opMatMulTransB, a, b, out)
}

// transBRows computes output rows [lo,hi) of a·bᵀ as dot products.
func transBRows(a, b, out *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			orow[j] = dotUnrolled(arow, b.Row(j))
		}
	}
}

// dotUnrolled returns Σ a[k]·b[k] using four parallel accumulators. The
// accumulation order is fixed (deterministic) but differs from a single
// running sum.
func dotUnrolled(a, b []float64) float64 {
	var s0, s1, s2, s3 float64
	n := len(a)
	b = b[:n] // bounds-check elimination hint
	k := 0
	for ; k+3 < n; k += 4 {
		s0 += a[k] * b[k]
		s1 += a[k+1] * b[k+1]
		s2 += a[k+2] * b[k+2]
		s3 += a[k+3] * b[k+3]
	}
	for ; k < n; k++ {
		s0 += a[k] * b[k]
	}
	return s0 + s1 + s2 + s3
}

// MatVec returns a·x for an (n×k) a and length-k x.
func MatVec(a *Matrix, x []float64) []float64 {
	out := make([]float64, a.Rows)
	MatVecInto(a, x, out)
	return out
}

// MatVecInto computes a·x into out, which must have length a.Rows;
// prior contents are overwritten.
func MatVecInto(a *Matrix, x, out []float64) {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("tensor: MatVec dim mismatch %dx%d · %d", a.Rows, a.Cols, len(x)))
	}
	if len(out) != a.Rows {
		panic(fmt.Sprintf("tensor: MatVecInto output length %d != %d", len(out), a.Rows))
	}
	for i := 0; i < a.Rows; i++ {
		out[i] = dotUnrolled(a.Row(i), x)
	}
}
