package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the number of multiply-adds below which MatMul runs
// single-threaded; goroutine fan-out costs more than it saves on small
// products.
const parallelThreshold = 1 << 18

// MatMul returns a·b for an (n×k) a and (k×m) b.
//
// The kernel iterates in i-k-j order so the inner loop walks both the
// output row and the b row contiguously, and shards output rows across
// GOMAXPROCS workers for large products.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dim mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	work := a.Rows * a.Cols * b.Cols
	if work < parallelThreshold {
		matmulRows(a, b, out, 0, a.Rows)
		return out
	}
	parallelRows(a.Rows, func(lo, hi int) { matmulRows(a, b, out, lo, hi) })
	return out
}

func matmulRows(a, b, out *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulTransA returns aᵀ·b for an (k×n) a and (k×m) b, without
// materializing the transpose. It is the weight-gradient kernel:
// dW = Xᵀ·dY.
func MatMulTransA(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransA outer dim mismatch %dx%d ᵀ· %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Cols, b.Cols)
	// out[i][j] = Σ_k a[k][i]·b[k][j]. Accumulate row-by-row of a/b so all
	// access is contiguous; single-threaded accumulation avoids racing on
	// shared output rows, and is parallelized over output rows when large.
	work := a.Rows * a.Cols * b.Cols
	if work < parallelThreshold {
		for k := 0; k < a.Rows; k++ {
			arow := a.Row(k)
			brow := b.Row(k)
			for i, av := range arow {
				if av == 0 {
					continue
				}
				orow := out.Row(i)
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
		return out
	}
	parallelRows(a.Cols, func(lo, hi int) {
		for k := 0; k < a.Rows; k++ {
			arow := a.Row(k)
			brow := b.Row(k)
			for i := lo; i < hi; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				orow := out.Row(i)
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
	return out
}

// MatMulTransB returns a·bᵀ for an (n×k) a and (m×k) b, without
// materializing the transpose. It is the input-gradient kernel:
// dX = dY·Wᵀ.
func MatMulTransB(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dim mismatch %dx%d · %dx%dᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			for j := 0; j < b.Rows; j++ {
				brow := b.Row(j)
				var s float64
				for k, av := range arow {
					s += av * brow[k]
				}
				orow[j] = s
			}
		}
	}
	work := a.Rows * a.Cols * b.Rows
	if work < parallelThreshold {
		body(0, a.Rows)
		return out
	}
	parallelRows(a.Rows, body)
	return out
}

// MatVec returns a·x for an (n×k) a and length-k x.
func MatVec(a *Matrix, x []float64) []float64 {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("tensor: MatVec dim mismatch %dx%d · %d", a.Rows, a.Cols, len(x)))
	}
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		var s float64
		for k, v := range row {
			s += v * x[k]
		}
		out[i] = s
	}
	return out
}

// parallelRows shards [0,n) row ranges across GOMAXPROCS workers and waits.
func parallelRows(n int, body func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
