package tensor

import (
	"fmt"
	"sync"
)

// Matrix32 is a dense row-major float32 matrix: the storage type of the
// opt-in float32 activation mode. Replica forward activations are held in
// Matrix32 buffers (halving their footprint and memory traffic) while all
// arithmetic, master weights, gradients and optimizer state stay float64;
// layers compute each output element as a float64 chain and round once on
// store. It intentionally mirrors only the small slice of Matrix's API
// the activation path needs.
type Matrix32 struct {
	Rows, Cols int
	Data       []float32
}

// New32 allocates a zeroed rows×cols float32 matrix.
func New32(rows, cols int) *Matrix32 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	matrixAllocs.Add(1)
	return &Matrix32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Row returns row i as a slice sharing the matrix's storage.
func (m *Matrix32) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// Quantize rounds src into dst element-wise (round-to-nearest-even, the
// hardware float64→float32 conversion). len(dst) must equal len(src).
func Quantize(dst []float32, src []float64) {
	src = src[:len(dst)]
	for i := range dst {
		dst[i] = float32(src[i])
	}
}

// Dequantize widens src into dst element-wise (exact: every float32 is a
// float64). len(dst) must equal len(src).
func Dequantize(dst []float64, src []float32) {
	src = src[:len(dst)]
	for i := range dst {
		dst[i] = float64(src[i])
	}
}

// bucketPool32 is the float32 counterpart of bucketPool: the global,
// size-bucketed backing store arenas drain their float32 buffers into.
var bucketPool32 [numBuckets]sync.Pool

// Get32 returns a zero-filled rows×cols float32 matrix owned by the arena
// (or by the caller when a is nil). Ownership follows the same rule as
// Get: valid until the arena's next Release.
func (a *Arena) Get32(rows, cols int) *Matrix32 {
	if a == nil {
		return New32(rows, cols)
	}
	m := a.GetNoZero32(rows, cols)
	for i := range m.Data {
		m.Data[i] = 0
	}
	return m
}

// GetNoZero32 returns a rows×cols float32 matrix owned by the arena
// without clearing its contents; the caller must fully overwrite every
// element before reading.
func (a *Arena) GetNoZero32(rows, cols int) *Matrix32 {
	if a == nil {
		return New32(rows, cols)
	}
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	need := rows * cols
	b := bucketFor(need)
	var m *Matrix32
	if n := len(a.free32[b]); n > 0 {
		m = a.free32[b][n-1]
		a.free32[b][n-1] = nil
		a.free32[b] = a.free32[b][:n-1]
	} else if v := bucketPool32[b].Get(); v != nil {
		m = v.(*Matrix32)
	} else {
		matrixAllocs.Add(1)
		m = &Matrix32{Data: make([]float32, 1<<b)}
	}
	m.Rows, m.Cols = rows, cols
	m.Data = m.Data[:need]
	a.out32 = append(a.out32, m)
	return m
}
