package tensor

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// matrixAllocs counts every Matrix backing allocation made by New and the
// Arena (pool misses). Tests use it to prove a steady-state search step is
// allocation-flat on the matrix plane; see MatrixAllocs.
var matrixAllocs atomic.Int64

// MatrixAllocs returns the number of matrix backing-array allocations
// performed so far by New and by Arena pool misses, process-wide. The
// counter only ever grows; callers diff two readings around a region of
// interest.
func MatrixAllocs() int64 { return matrixAllocs.Load() }

// numBuckets covers sizes up to 2^47 elements — far beyond anything the
// process can address — so bucketFor never overflows the array.
const numBuckets = 48

// bucketFor returns the pool bucket for a backing array of n float64s:
// the smallest b with 1<<b >= n.
func bucketFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// bucketPool is the global, size-bucketed backing store shared by all
// arenas: bucket b holds *Matrix values whose Data capacity is exactly
// 1<<b. Draining an arena returns its buffers here so other shards (or
// later searches) can reuse them.
var bucketPool [numBuckets]sync.Pool

// Arena is a region-style matrix allocator for the intermediates of one
// forward/backward pass. Get hands out matrices; Release returns every
// matrix handed out since the last Release to the arena's local free
// lists, where the next pass reuses them without touching the global
// pools or the GC. Drain hands the free lists back to the global
// sync.Pool-backed store.
//
// Ownership rule: a matrix obtained from Get is valid until the next
// Release on the same arena. Callers must not retain arena matrices
// across Release (clone them instead), and must not Release while a
// matrix is still referenced by in-flight work.
//
// An Arena is NOT safe for concurrent use; give each shard its own.
// A nil *Arena is valid and degrades to plain heap allocation via New,
// so arena-threaded code needs no nil checks at call sites.
type Arena struct {
	free [numBuckets][]*Matrix
	out  []*Matrix

	// float32 twins of free/out, used by the float32 activation mode
	// (Get32/GetNoZero32 in matrix32.go). Unused arenas pay only the
	// struct space.
	free32 [numBuckets][]*Matrix32
	out32  []*Matrix32
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// Get returns a zero-filled rows×cols matrix owned by the arena (or by
// the caller when a is nil).
func (a *Arena) Get(rows, cols int) *Matrix {
	if a == nil {
		return New(rows, cols)
	}
	m := a.GetNoZero(rows, cols)
	for i := range m.Data {
		m.Data[i] = 0
	}
	return m
}

// GetNoZero returns a rows×cols matrix owned by the arena without
// clearing its contents; the caller must fully overwrite every element
// before reading. Use Get when the kernel accumulates into the output.
func (a *Arena) GetNoZero(rows, cols int) *Matrix {
	if a == nil {
		return New(rows, cols)
	}
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	need := rows * cols
	b := bucketFor(need)
	var m *Matrix
	if n := len(a.free[b]); n > 0 {
		m = a.free[b][n-1]
		a.free[b][n-1] = nil
		a.free[b] = a.free[b][:n-1]
	} else if v := bucketPool[b].Get(); v != nil {
		m = v.(*Matrix)
	} else {
		matrixAllocs.Add(1)
		m = &Matrix{Data: make([]float64, 1<<b)}
	}
	m.Rows, m.Cols = rows, cols
	m.Data = m.Data[:need]
	a.out = append(a.out, m)
	return m
}

// Release returns every matrix handed out since the previous Release to
// the arena's free lists. All such matrices become invalid; see the
// ownership rule above. Nil-safe.
func (a *Arena) Release() {
	if a == nil {
		return
	}
	for i, m := range a.out {
		m.Data = m.Data[:cap(m.Data)]
		a.free[bucketFor(cap(m.Data))] = append(a.free[bucketFor(cap(m.Data))], m)
		a.out[i] = nil
	}
	a.out = a.out[:0]
	for i, m := range a.out32 {
		m.Data = m.Data[:cap(m.Data)]
		a.free32[bucketFor(cap(m.Data))] = append(a.free32[bucketFor(cap(m.Data))], m)
		a.out32[i] = nil
	}
	a.out32 = a.out32[:0]
}

// Drain releases outstanding matrices and hands the arena's free lists
// back to the global pools, so the memory can serve other arenas or be
// collected. Nil-safe.
func (a *Arena) Drain() {
	if a == nil {
		return
	}
	a.Release()
	for b := range a.free {
		for i, m := range a.free[b] {
			bucketPool[b].Put(m)
			a.free[b][i] = nil
		}
		a.free[b] = a.free[b][:0]
	}
	for b := range a.free32 {
		for i, m := range a.free32[b] {
			bucketPool32[b].Put(m)
			a.free32[b][i] = nil
		}
		a.free32[b] = a.free32[b][:0]
	}
}

// Live returns the number of matrices handed out since the last Release
// (0 for nil arenas). Test hook.
func (a *Arena) Live() int {
	if a == nil {
		return 0
	}
	return len(a.out) + len(a.out32)
}

// ---------------------------------------------------------------------------
// Persistent kernel worker pool.
//
// Large matmuls shard output rows across workers. Spawning a goroutine
// per chunk per call (the old parallelRows) costs a scheduler round-trip
// on every kernel invocation; instead a fixed set of workers, started on
// first use and sized to GOMAXPROCS at that moment, receives fixed-shape
// task structs over a channel. Tasks carry no closures, so dispatch
// itself is allocation-free (WaitGroups are pooled).

type kernelOp uint8

const (
	opMatMul kernelOp = iota
	opMatMulTransA
	opMatMulTransB
	opRange
)

type kernelTask struct {
	op     kernelOp
	a, b   *Matrix
	out    *Matrix
	fn     func(lo, hi int)
	lo, hi int
	wg     *sync.WaitGroup
}

func runKernelRange(t kernelTask) {
	switch t.op {
	case opMatMul:
		matmulRows(t.a, t.b, t.out, t.lo, t.hi)
	case opMatMulTransA:
		transACols(t.a, t.b, t.out, t.lo, t.hi)
	case opMatMulTransB:
		transBRows(t.a, t.b, t.out, t.lo, t.hi)
	case opRange:
		t.fn(t.lo, t.hi)
	}
}

var wgPool = sync.Pool{New: func() any { return new(sync.WaitGroup) }}

type kernelPool struct {
	workers int
	tasks   chan kernelTask
}

func newKernelPool(workers int) *kernelPool {
	if workers < 1 {
		workers = 1
	}
	p := &kernelPool{workers: workers, tasks: make(chan kernelTask, 4*workers)}
	for i := 0; i < workers; i++ {
		go p.work()
	}
	return p
}

func (p *kernelPool) work() {
	for t := range p.tasks {
		runKernelRange(t)
		t.wg.Done()
	}
}

// run shards [0,n) across at most workers pool workers (<= 0 means the
// pool's full width) and blocks until every chunk has finished. When the
// queue is full (all workers busy — e.g. several shards issuing large
// kernels at once) the submitter runs the chunk inline instead of
// blocking, so the pool can never deadlock or idle the submitting
// goroutine.
func (p *kernelPool) run(n int, op kernelOp, a, b, out *Matrix, workers int) {
	if workers <= 0 || workers > p.workers {
		workers = p.workers
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		runKernelRange(kernelTask{op: op, a: a, b: b, out: out, lo: 0, hi: n})
		return
	}
	wg := wgPool.Get().(*sync.WaitGroup)
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		t := kernelTask{op: op, a: a, b: b, out: out, lo: lo, hi: hi, wg: wg}
		select {
		case p.tasks <- t:
		default:
			runKernelRange(t)
			wg.Done()
		}
	}
	wg.Wait()
	wgPool.Put(wg)
}

// ParallelFor shards [0,n) into contiguous chunks and runs fn(lo, hi)
// for each on the shared kernel pool, blocking until every chunk has
// finished. workers bounds the parallelism: <= 0 means the pool's worker
// count, 1 runs fn(0, n) inline with no dispatch at all. fn must be safe
// to invoke concurrently on disjoint ranges.
//
// Chunks are cut finer than the worker count (up to 4 chunks per worker)
// so ranges with very uneven per-index cost — e.g. parameter lists mixing
// embedding tables and biases — still balance. Callers on a hot path
// should hoist fn into a reused closure: dispatch itself then performs no
// allocations (tasks are fixed-shape values, WaitGroups are pooled).
//
// Determinism contract: ParallelFor provides no ordering between chunks.
// Results are bit-deterministic iff fn's chunks touch disjoint state, so
// that the outcome is independent of chunk boundaries and scheduling.
func ParallelFor(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p := sharedPool()
	if workers <= 0 {
		workers = p.workers
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunks := 4 * workers
	if chunks > n {
		chunks = n
	}
	chunk := (n + chunks - 1) / chunks
	wg := wgPool.Get().(*sync.WaitGroup)
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		t := kernelTask{op: opRange, fn: fn, lo: lo, hi: hi, wg: wg}
		select {
		case p.tasks <- t:
		default:
			// Pool saturated: run the chunk on the submitting goroutine so
			// ParallelFor can never deadlock behind its own siblings.
			runKernelRange(t)
			wg.Done()
		}
	}
	wg.Wait()
	wgPool.Put(wg)
}

var sharedKernel struct {
	mu   sync.Mutex
	pool atomic.Pointer[kernelPool]
}

// sharedPool returns the process-wide kernel pool, started on first use
// and sized to GOMAXPROCS. Unlike the historical once-sized pool, the
// size is re-checked on every call: when GOMAXPROCS has changed since
// the pool was built (benchmarks sweeping core counts, operators tuning
// a live process), the next dispatch swaps in a pool of the new width
// instead of forever running at the stale one.
//
// The previous pool is abandoned, not stopped: a goroutine that loaded
// it just before the swap may still be submitting, and closing its task
// channel (or draining its workers with poison pills) could strand that
// submission behind a queue nobody services. Its parked workers cost a
// few KB of stack each, and resizes are rare — correctness over a
// micro-leak. With a single processor the pool is never consulted:
// parallel dispatch short-circuits to the inline path.
func sharedPool() *kernelPool {
	n := runtime.GOMAXPROCS(0)
	if p := sharedKernel.pool.Load(); p != nil && p.workers == n {
		return p
	}
	sharedKernel.mu.Lock()
	defer sharedKernel.mu.Unlock()
	p := sharedKernel.pool.Load()
	if p == nil || p.workers != n {
		p = newKernelPool(n)
		sharedKernel.pool.Store(p)
	}
	return p
}

// KernelPoolWorkers reports the worker count of the shared kernel pool
// the next dispatch will use. It follows GOMAXPROCS: calling it after a
// GOMAXPROCS change reflects (and triggers) the resize.
func KernelPoolWorkers() int { return sharedPool().workers }

// parallelGrain is the number of multiply-add (or equivalent fused)
// operations one worker should own before fanning out to another: below
// it, dispatch overhead costs more than the parallelism saves. The
// historical static threshold ran kernels serially below 2·parallelGrain
// multiply-adds; WorkersFor preserves that cutoff exactly and scales
// workers with the work above it.
const parallelGrain = 1 << 17

// WorkersFor returns the budget-aware worker count for a kernel of work
// multiply-adds under a budget of workers cores: one worker per
// parallelGrain of work, at least 1, at most the budget. budget <= 0
// means the shared pool's width (GOMAXPROCS). This is the single
// dispatch policy behind every budgeted kernel and layer loop, so the
// serial/parallel decision is consistent across the code base.
func WorkersFor(work, budget int) int {
	if budget <= 0 {
		budget = sharedPool().workers
	}
	w := work / parallelGrain
	if w < 1 {
		return 1
	}
	if w > budget {
		return budget
	}
	return w
}
