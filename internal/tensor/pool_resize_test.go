package tensor

import (
	"runtime"
	"testing"
)

// TestSharedPoolTracksGOMAXPROCS is the regression test for the stale
// kernel-pool sizing bug: the shared pool used to be sized to GOMAXPROCS
// at first use and never resized, so a process that raised (or lowered)
// GOMAXPROCS after the first kernel dispatch kept the stale width
// forever. The pool must now follow GOMAXPROCS changes made after first
// use.
func TestSharedPoolTracksGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	runtime.GOMAXPROCS(2)
	// Force first use at width 2.
	ParallelFor(16, 0, func(lo, hi int) {})
	if got := KernelPoolWorkers(); got != 2 {
		t.Fatalf("pool width after first use at GOMAXPROCS=2: %d", got)
	}

	// The historical bug: this change was never observed.
	runtime.GOMAXPROCS(4)
	if got := KernelPoolWorkers(); got != 4 {
		t.Fatalf("pool width after GOMAXPROCS 2→4: %d, want 4", got)
	}
	// Shrinking must track too.
	runtime.GOMAXPROCS(1)
	if got := KernelPoolWorkers(); got != 1 {
		t.Fatalf("pool width after GOMAXPROCS 4→1: %d, want 1", got)
	}
	runtime.GOMAXPROCS(3)

	// Work submitted across a resize must still be complete and correct:
	// sum [0,n) via disjoint per-chunk writes, then reduce.
	const n = 1 << 12
	marks := make([]int, n)
	ParallelFor(n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			marks[i] = i
		}
	})
	sum := 0
	for _, v := range marks {
		sum += v
	}
	if want := n * (n - 1) / 2; sum != want {
		t.Fatalf("ParallelFor after resize: sum %d, want %d", sum, want)
	}
}

// TestMatMulBudgetedBitIdentical pins the budget-aware dispatch's
// determinism contract: for any workers budget (serial, uneven, larger
// than the pool), the budgeted kernels produce bit-identical results to
// the serial reference, on shapes small enough to stay serial and large
// enough to fan out.
func TestMatMulBudgetedBitIdentical(t *testing.T) {
	rng := NewRNG(7)
	shapes := []struct{ n, k, m int }{
		{8, 16, 8},     // tiny: always serial
		{64, 96, 128},  // mid: serial under the grain policy
		{128, 96, 512}, // large: crosses the fan-out cutoff
	}
	for _, sh := range shapes {
		a := RandN(sh.n, sh.k, 1, rng)
		b := RandN(sh.k, sh.m, 1, rng)
		bt := RandN(sh.m, sh.k, 1, rng)

		ref := New(sh.n, sh.m)
		matmulRows(a, b, ref, 0, sh.n)
		for _, workers := range []int{1, 2, 3, 5, 64} {
			out := New(sh.n, sh.m)
			MatMulIntoN(a, b, out, workers)
			assertBitEqual(t, "MatMulIntoN", ref, out, workers)

			taRef := New(sh.k, sh.m)
			transACols(a, out, taRef, 0, sh.k)
			ta := New(sh.k, sh.m)
			MatMulTransAIntoN(a, out, ta, workers)
			assertBitEqual(t, "MatMulTransAIntoN", taRef, ta, workers)

			tbRef := New(sh.n, sh.m)
			transBRows(a, bt, tbRef, 0, sh.n)
			tb := New(sh.n, sh.m)
			MatMulTransBIntoN(a, bt, tb, workers)
			assertBitEqual(t, "MatMulTransBIntoN", tbRef, tb, workers)
		}
	}
}

func assertBitEqual(t *testing.T, kernel string, want, got *Matrix, workers int) {
	t.Helper()
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("%s(workers=%d): element %d = %x, want %x",
				kernel, workers, i, got.Data[i], want.Data[i])
		}
	}
}

func TestWorkersFor(t *testing.T) {
	cases := []struct{ work, budget, want int }{
		{1, 8, 1},
		{parallelGrain - 1, 8, 1},
		{2*parallelGrain - 1, 8, 1}, // the historical serial threshold
		{2 * parallelGrain, 8, 2},
		{16 * parallelGrain, 8, 8}, // capped by the budget
		{16 * parallelGrain, 3, 3},
		{16 * parallelGrain, 1, 1},
	}
	for _, c := range cases {
		if got := WorkersFor(c.work, c.budget); got != c.want {
			t.Errorf("WorkersFor(%d, %d) = %d, want %d", c.work, c.budget, got, c.want)
		}
	}
	if got := WorkersFor(1, 0); got != 1 {
		t.Errorf("WorkersFor(1, 0) = %d, want 1", got)
	}
}
