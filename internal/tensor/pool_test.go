package tensor

import (
	"math"
	"sync"
	"testing"
)

// refMatMulIKJ is the pre-unrolling scalar kernel (i-k-j order, zero-skip)
// kept as the bit-exactness reference for MatMul: the 4-wide unrolled
// axpy applies the same adds to each output element in the same order.
func refMatMulIKJ(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

func refMatMulTransAIKJ(a, b *Matrix) *Matrix {
	out := New(a.Cols, b.Cols)
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Row(i)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

func bitIdentical(t *testing.T, name string, got, want *Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d want %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("%s: element %d = %v (bits %x) want %v (bits %x)",
				name, i, got.Data[i], math.Float64bits(got.Data[i]),
				want.Data[i], math.Float64bits(want.Data[i]))
		}
	}
}

// dirty returns a rows×cols matrix filled with garbage, standing in for a
// reused pool buffer whose prior contents must not leak into results.
func dirty(rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = math.Inf(1)
	}
	return m
}

func randomShapes(rng *RNG, n int) [][3]int {
	shapes := make([][3]int, 0, n+4)
	// Edge shapes first: single row/col/inner, and non-multiple-of-4 dims
	// that exercise the unroll tails.
	shapes = append(shapes, [3]int{1, 1, 1}, [3]int{1, 7, 3}, [3]int{5, 1, 9}, [3]int{3, 4, 1})
	for i := 0; i < n; i++ {
		shapes = append(shapes, [3]int{
			1 + int(rng.Uint64()%33),
			1 + int(rng.Uint64()%33),
			1 + int(rng.Uint64()%33),
		})
	}
	return shapes
}

// sparsify zeroes a fraction of elements so the zero-skip path is hit.
func sparsify(m *Matrix, rng *RNG) {
	for i := range m.Data {
		if rng.Uint64()%4 == 0 {
			m.Data[i] = 0
		}
	}
}

func TestMatMulIntoBitIdenticalAcrossShapes(t *testing.T) {
	rng := NewRNG(101)
	for _, s := range randomShapes(rng, 40) {
		n, k, m := s[0], s[1], s[2]
		a := RandN(n, k, 1, rng)
		b := RandN(k, m, 1, rng)
		sparsify(a, rng)

		want := refMatMulIKJ(a, b)
		bitIdentical(t, "MatMul", MatMul(a, b), want)

		into := dirty(n, m)
		MatMulInto(a, b, into)
		bitIdentical(t, "MatMulInto(dirty)", into, want)

		ar := NewArena()
		pooled := ar.GetNoZero(n, m)
		MatMulInto(a, b, pooled)
		bitIdentical(t, "MatMulInto(arena)", pooled, want)
		// Reuse the same arena buffer for a second product.
		ar.Release()
		pooled = ar.GetNoZero(n, m)
		MatMulInto(a, b, pooled)
		bitIdentical(t, "MatMulInto(arena reuse)", pooled, want)
	}
}

func TestMatMulTransAIntoBitIdenticalAcrossShapes(t *testing.T) {
	rng := NewRNG(102)
	for _, s := range randomShapes(rng, 40) {
		k, n, m := s[0], s[1], s[2]
		a := RandN(k, n, 1, rng) // batch×in
		b := RandN(k, m, 1, rng) // batch×out
		sparsify(a, rng)

		want := refMatMulTransAIKJ(a, b)
		bitIdentical(t, "MatMulTransA", MatMulTransA(a, b), want)

		into := dirty(n, m)
		MatMulTransAInto(a, b, into)
		bitIdentical(t, "MatMulTransAInto(dirty)", into, want)
	}
}

func TestMatMulTransBIntoBitIdenticalAcrossShapes(t *testing.T) {
	rng := NewRNG(103)
	for _, s := range randomShapes(rng, 40) {
		n, k, m := s[0], s[1], s[2]
		a := RandN(n, k, 1, rng)
		b := RandN(m, k, 1, rng)

		want := MatMulTransB(a, b)
		into := dirty(n, m)
		MatMulTransBInto(a, b, into)
		bitIdentical(t, "MatMulTransBInto(dirty)", into, want)

		// Cross-check values against the transpose-then-multiply route.
		ref := refMatMulIKJ(a, Transpose(b))
		if !Equal(into, ref, 1e-12) {
			t.Fatalf("MatMulTransB disagrees with a·(bᵀ) beyond tolerance")
		}
	}
}

func TestMatVecIntoBitIdentical(t *testing.T) {
	rng := NewRNG(104)
	for _, s := range randomShapes(rng, 20) {
		n, k := s[0], s[1]
		a := RandN(n, k, 1, rng)
		x := make([]float64, k)
		for i := range x {
			x[i] = rng.Norm()
		}
		want := MatVec(a, x)
		got := make([]float64, n)
		for i := range got {
			got[i] = math.Inf(-1)
		}
		MatVecInto(a, x, got)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("MatVecInto[%d] = %v want %v", i, got[i], want[i])
			}
		}
	}
}

// TestKernelPoolMatchesSerial forces the worker-pool path (bypassing the
// size threshold) and asserts it is bit-identical to the serial kernels
// for every op, including under concurrent submitters.
func TestKernelPoolMatchesSerial(t *testing.T) {
	pool := newKernelPool(4)
	rng := NewRNG(105)
	type c struct {
		op   kernelOp
		a, b *Matrix
		want *Matrix
		n    int
	}
	var cases []c
	for i := 0; i < 8; i++ {
		n := 3 + int(rng.Uint64()%60)
		k := 3 + int(rng.Uint64()%60)
		m := 3 + int(rng.Uint64()%60)
		a := RandN(n, k, 1, rng)
		b := RandN(k, m, 1, rng)
		g := RandN(n, m, 1, rng) // batch×out gradient for the TransA case
		sparsify(a, rng)
		cases = append(cases, c{opMatMul, a, b, MatMul(a, b), n})
		cases = append(cases, c{opMatMulTransA, a, g, MatMulTransA(a, g), k})
		bt := Transpose(b)
		cases = append(cases, c{opMatMulTransB, a, bt, MatMulTransB(a, bt), n})
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 10; rep++ {
				for _, tc := range cases {
					out := New(tc.want.Rows, tc.want.Cols)
					pool.run(tc.n, tc.op, tc.a, tc.b, out, 0)
					for i := range out.Data {
						if math.Float64bits(out.Data[i]) != math.Float64bits(tc.want.Data[i]) {
							t.Errorf("pooled op %d element %d = %v want %v", tc.op, i, out.Data[i], tc.want.Data[i])
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(pool.tasks)
}

func TestArenaGetZeroedAndReuse(t *testing.T) {
	a := NewArena()
	m := a.GetNoZero(4, 5)
	for i := range m.Data {
		m.Data[i] = 7
	}
	a.Release()
	base := MatrixAllocs()
	// Same bucket: must reuse the buffer (no new allocation) and Get must
	// zero it.
	z := a.Get(5, 4)
	if MatrixAllocs() != base {
		t.Fatalf("arena reuse allocated a new matrix")
	}
	if z.Rows != 5 || z.Cols != 4 {
		t.Fatalf("shape %dx%d want 5x4", z.Rows, z.Cols)
	}
	for i, v := range z.Data {
		if v != 0 {
			t.Fatalf("Get returned dirty element %d = %v", i, v)
		}
	}
	if a.Live() != 1 {
		t.Fatalf("Live() = %d want 1", a.Live())
	}
	a.Drain()
	if a.Live() != 0 {
		t.Fatalf("Live() after Drain = %d want 0", a.Live())
	}
}

func TestArenaNilSafe(t *testing.T) {
	var a *Arena
	m := a.Get(3, 3)
	if m.Rows != 3 || m.Cols != 3 {
		t.Fatalf("nil arena Get shape %dx%d", m.Rows, m.Cols)
	}
	a.Release()
	a.Drain()
	if a.Live() != 0 {
		t.Fatalf("nil arena Live() != 0")
	}
}

func TestArenaSteadyStateAllocFree(t *testing.T) {
	a := NewArena()
	// Warm the free lists.
	for i := 0; i < 3; i++ {
		a.Get(16, 16)
		a.GetNoZero(8, 3)
		a.Release()
	}
	allocs := testing.AllocsPerRun(100, func() {
		a.Get(16, 16)
		a.GetNoZero(8, 3)
		a.Release()
	})
	if allocs != 0 {
		t.Fatalf("steady-state arena cycle allocates %v objects/run, want 0", allocs)
	}
}

func TestArenaZeroSizedMatrices(t *testing.T) {
	a := NewArena()
	m := a.Get(0, 7)
	if m.Rows != 0 || m.Cols != 7 || len(m.Data) != 0 {
		t.Fatalf("zero-row matrix misshaped: %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	a.Release()
}
