package tensor

import "math"

// RNG is a small, deterministic SplitMix64-based random number generator.
//
// The search algorithm, the super-network initialization, and the synthetic
// data pipeline all need independent, seedable, reproducible randomness on
// many goroutines at once; math/rand's global source is locked and its
// seeding across Go versions is awkward for that, so the project carries
// its own generator. SplitMix64 passes BigCrush and splits cheaply.
type RNG struct {
	state uint64
	zero  bool
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// ZeroRNG returns a degenerate generator whose every draw is zero and
// whose Split returns another such generator. Structural constructors
// pass it when a tensor's initial values are irrelevant — e.g. Replicate
// overwrites every replica weight with shared master storage, so the
// Box–Muller work of a real initialization would be thrown away.
//
// RandN and GlorotUniform go further for a ZeroRNG: they return a
// shape-only placeholder whose Data is nil, skipping the allocation too.
// Any read of such a matrix before its storage is replaced panics, which
// is deliberate — it catches a structural clone being used as a network.
func ZeroRNG() *RNG { return &RNG{zero: true} }

// State returns the generator's complete internal state. Together with
// SetState it makes RNG streams checkpointable: a generator restored to a
// saved state produces exactly the sequence the original would have.
func (r *RNG) State() uint64 { return r.state }

// SetState restores a state previously captured with State, discarding
// the generator's current position in its stream.
func (r *RNG) SetState(state uint64) { r.state = state }

// Split returns a new independent generator derived from r's stream,
// advancing r. Derived generators are safe to hand to other goroutines.
func (r *RNG) Split() *RNG {
	if r.zero {
		return &RNG{zero: true}
	}
	return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 uniformly random bits (always 0 for ZeroRNG).
func (r *RNG) Uint64() uint64 {
	if r.zero {
		return 0
	}
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard-normal sample (Box–Muller).
func (r *RNG) Norm() float64 {
	// Rejection-free Box–Muller; u1 in (0,1].
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a random permutation of [0,n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Categorical samples an index from the (unnormalized, non-negative)
// weights. It panics if the total weight is not positive.
func (r *RNG) Categorical(weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		panic("tensor: Categorical with non-positive total weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// RandN fills a rows×cols matrix with N(0, std²) samples. For a ZeroRNG
// it returns an unallocated shape-only placeholder — see ZeroRNG.
func RandN(rows, cols int, std float64, r *RNG) *Matrix {
	if r.zero {
		return &Matrix{Rows: rows, Cols: cols}
	}
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.Norm() * std
	}
	return m
}

// GlorotUniform fills a fanIn×fanOut matrix with the Glorot/Xavier uniform
// initialization, the default for dense layers. For a ZeroRNG it returns
// an unallocated shape-only placeholder — see ZeroRNG.
func GlorotUniform(fanIn, fanOut int, r *RNG) *Matrix {
	if r.zero {
		return &Matrix{Rows: fanIn, Cols: fanOut}
	}
	m := New(fanIn, fanOut)
	limit := math.Sqrt(6 / float64(fanIn+fanOut))
	for i := range m.Data {
		m.Data[i] = (2*r.Float64() - 1) * limit
	}
	return m
}
