package tensor

import "testing"

func TestRNGStateRestoreReplaysStream(t *testing.T) {
	r := NewRNG(42)
	for i := 0; i < 100; i++ {
		r.Uint64() // move to an arbitrary mid-stream position
	}
	saved := r.State()
	want := make([]uint64, 50)
	for i := range want {
		want[i] = r.Uint64()
	}
	r.SetState(saved)
	for i := range want {
		if got := r.Uint64(); got != want[i] {
			t.Fatalf("draw %d after restore = %#x, want %#x", i, got, want[i])
		}
	}
}

func TestRNGStateTransfersAcrossGenerators(t *testing.T) {
	a := NewRNG(7)
	a.Float64()
	a.Norm()
	b := NewRNG(999999)
	b.SetState(a.State())
	// A restored generator replays everything derived from the stream,
	// including splits — the property checkpoint resume depends on.
	as, bs := a.Split(), b.Split()
	for i := 0; i < 20; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("parent streams diverged after state transfer")
		}
		if as.Uint64() != bs.Uint64() {
			t.Fatal("split streams diverged after state transfer")
		}
	}
}
