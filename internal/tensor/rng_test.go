package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(7)
	s := r.Split()
	// The split stream should differ from the parent's continuation.
	same := 0
	for i := 0; i < 64; i++ {
		if r.Uint64() == s.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split stream collides with parent %d/64 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestIntnRangeProperty(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		n := int(n8%100) + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(3)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("Norm variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(9)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestCategoricalRespectsWeights(t *testing.T) {
	r := NewRNG(5)
	weights := []float64{0, 0, 1, 0}
	for i := 0; i < 100; i++ {
		if got := r.Categorical(weights); got != 2 {
			t.Fatalf("Categorical with point mass = %d, want 2", got)
		}
	}
	// Statistical check on a 1:3 split.
	counts := [2]int{}
	weights = []float64{1, 3}
	const n = 40000
	for i := 0; i < n; i++ {
		counts[r.Categorical(weights)]++
	}
	frac := float64(counts[1]) / n
	if math.Abs(frac-0.75) > 0.02 {
		t.Errorf("Categorical frequency = %v, want ~0.75", frac)
	}
}

func TestCategoricalPanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Categorical([]float64{0, 0})
}

func TestRandNShapeAndSpread(t *testing.T) {
	r := NewRNG(2)
	m := RandN(20, 30, 0.5, r)
	if m.Rows != 20 || m.Cols != 30 {
		t.Fatalf("shape = %dx%d", m.Rows, m.Cols)
	}
	var sumsq float64
	for _, v := range m.Data {
		sumsq += v * v
	}
	std := math.Sqrt(sumsq / float64(len(m.Data)))
	if math.Abs(std-0.5) > 0.05 {
		t.Errorf("RandN std = %v, want ~0.5", std)
	}
}

func TestGlorotUniformBounds(t *testing.T) {
	r := NewRNG(4)
	fanIn, fanOut := 64, 32
	limit := math.Sqrt(6 / float64(fanIn+fanOut))
	m := GlorotUniform(fanIn, fanOut, r)
	for _, v := range m.Data {
		if v < -limit || v > limit {
			t.Fatalf("Glorot sample %v outside ±%v", v, limit)
		}
	}
}
