// Package tensor provides dense float64 matrices and vectors with the
// linear-algebra kernels the rest of the system is built on: blocked,
// optionally parallel matrix multiplication (including the transposed
// variants needed for backpropagation), elementwise maps, reductions, and
// deterministic random initialization.
//
// The package is deliberately small: it implements exactly what the
// neural-network substrate (internal/nn), the performance model
// (internal/perfmodel), and the DLRM super-network (internal/supernet)
// need, with no external dependencies.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense, row-major float64 matrix. The zero value is an empty
// matrix; use New or NewFromData to create one with a shape.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// New returns a zero-filled rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	matrixAllocs.Add(1)
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewFromData wraps data (not copied) as a rows×cols matrix.
func NewFromData(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns the i-th row as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets every element of m to zero in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element of m to v in place.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Shape returns (rows, cols).
func (m *Matrix) Shape() (int, int) { return m.Rows, m.Cols }

// String renders small matrices fully and large ones as a shape summary.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
	}
	s := fmt.Sprintf("Matrix(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}

// sameShape panics unless a and b have identical shapes.
func sameShape(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// Add returns a+b elementwise.
func Add(a, b *Matrix) *Matrix {
	sameShape("Add", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// AddInto computes a+b elementwise into out (which may alias a or b).
func AddInto(a, b, out *Matrix) {
	sameShape("AddInto", a, b)
	sameShape("AddInto", a, out)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
}

// AddInPlace adds b into a elementwise and returns a.
func AddInPlace(a, b *Matrix) *Matrix {
	sameShape("AddInPlace", a, b)
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
	return a
}

// Sub returns a-b elementwise.
func Sub(a, b *Matrix) *Matrix {
	sameShape("Sub", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Mul returns the elementwise (Hadamard) product a⊙b.
func Mul(a, b *Matrix) *Matrix {
	sameShape("Mul", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// Scale returns s·a.
func Scale(a *Matrix, s float64) *Matrix {
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * s
	}
	return out
}

// ScaleInPlace multiplies every element of a by s and returns a.
func ScaleInPlace(a *Matrix, s float64) *Matrix {
	for i := range a.Data {
		a.Data[i] *= s
	}
	return a
}

// AXPY computes a += s·b in place.
func AXPY(a *Matrix, s float64, b *Matrix) {
	sameShape("AXPY", a, b)
	for i := range a.Data {
		a.Data[i] += s * b.Data[i]
	}
}

// Apply returns f applied elementwise to a.
func Apply(a *Matrix, f func(float64) float64) *Matrix {
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = f(a.Data[i])
	}
	return out
}

// Transpose returns aᵀ.
func Transpose(a *Matrix) *Matrix {
	out := New(a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for j, v := range row {
			out.Data[j*a.Rows+i] = v
		}
	}
	return out
}

// Sum returns the sum of all elements.
func Sum(a *Matrix) float64 {
	var s float64
	for _, v := range a.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty matrices).
func Mean(a *Matrix) float64 {
	if len(a.Data) == 0 {
		return 0
	}
	return Sum(a) / float64(len(a.Data))
}

// MaxAbs returns the largest absolute element value (0 for empty matrices).
func MaxAbs(a *Matrix) float64 {
	var m float64
	for _, v := range a.Data {
		if av := math.Abs(v); av > m {
			m = av
		}
	}
	return m
}

// Norm2 returns the Frobenius norm of a.
func Norm2(a *Matrix) float64 {
	var s float64
	for _, v := range a.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// RowSums returns a column vector (n×1 matrix) of per-row sums.
func RowSums(a *Matrix) *Matrix {
	out := New(a.Rows, 1)
	for i := 0; i < a.Rows; i++ {
		var s float64
		for _, v := range a.Row(i) {
			s += v
		}
		out.Data[i] = s
	}
	return out
}

// ColSums returns a row vector (1×m matrix) of per-column sums.
func ColSums(a *Matrix) *Matrix {
	out := New(1, a.Cols)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for j, v := range row {
			out.Data[j] += v
		}
	}
	return out
}

// AddRowVector adds the 1×m row vector v to every row of a, in place.
func AddRowVector(a *Matrix, v *Matrix) {
	if v.Rows != 1 || v.Cols != a.Cols {
		panic(fmt.Sprintf("tensor: AddRowVector shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, v.Rows, v.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for j := range row {
			row[j] += v.Data[j]
		}
	}
}

// Equal reports whether a and b have identical shape and elements within tol.
func Equal(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}
