package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapeAndZero(t *testing.T) {
	m := New(3, 4)
	if r, c := m.Shape(); r != 3 || c != 4 {
		t.Fatalf("Shape() = %d,%d want 3,4", r, c)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
}

func TestNewFromDataPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched data length")
		}
	}()
	NewFromData(2, 3, []float64{1, 2, 3})
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", got)
	}
	row := m.Row(1)
	if row[2] != 7.5 {
		t.Fatalf("Row(1)[2] = %v, want 7.5", row[2])
	}
	row[0] = 3 // Row aliases storage.
	if m.At(1, 0) != 3 {
		t.Fatal("Row must alias matrix storage")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := NewFromData(1, 2, []float64{1, 2})
	c := m.Clone()
	c.Data[0] = 99
	if m.Data[0] != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := NewFromData(2, 2, []float64{1, 2, 3, 4})
	b := NewFromData(2, 2, []float64{10, 20, 30, 40})
	if got := Add(a, b); !Equal(got, NewFromData(2, 2, []float64{11, 22, 33, 44}), 0) {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(b, a); !Equal(got, NewFromData(2, 2, []float64{9, 18, 27, 36}), 0) {
		t.Errorf("Sub = %v", got)
	}
	if got := Mul(a, b); !Equal(got, NewFromData(2, 2, []float64{10, 40, 90, 160}), 0) {
		t.Errorf("Mul = %v", got)
	}
	if got := Scale(a, 2); !Equal(got, NewFromData(2, 2, []float64{2, 4, 6, 8}), 0) {
		t.Errorf("Scale = %v", got)
	}
	if got := Apply(a, func(x float64) float64 { return -x }); !Equal(got, Scale(a, -1), 0) {
		t.Errorf("Apply = %v", got)
	}
}

func TestAXPY(t *testing.T) {
	a := NewFromData(1, 3, []float64{1, 2, 3})
	b := NewFromData(1, 3, []float64{10, 10, 10})
	AXPY(a, 0.5, b)
	if !Equal(a, NewFromData(1, 3, []float64{6, 7, 8}), 1e-12) {
		t.Fatalf("AXPY = %v", a)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for shape mismatch")
		}
	}()
	Add(New(2, 2), New(2, 3))
}

func TestTranspose(t *testing.T) {
	a := NewFromData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	at := Transpose(a)
	want := NewFromData(3, 2, []float64{1, 4, 2, 5, 3, 6})
	if !Equal(at, want, 0) {
		t.Fatalf("Transpose = %v, want %v", at, want)
	}
}

func TestReductions(t *testing.T) {
	a := NewFromData(2, 3, []float64{1, -2, 3, 4, 5, -6})
	if got := Sum(a); got != 5 {
		t.Errorf("Sum = %v, want 5", got)
	}
	if got := Mean(a); math.Abs(got-5.0/6) > 1e-12 {
		t.Errorf("Mean = %v, want %v", got, 5.0/6)
	}
	if got := MaxAbs(a); got != 6 {
		t.Errorf("MaxAbs = %v, want 6", got)
	}
	rs := RowSums(a)
	if rs.Data[0] != 2 || rs.Data[1] != 3 {
		t.Errorf("RowSums = %v", rs.Data)
	}
	cs := ColSums(a)
	if cs.Data[0] != 5 || cs.Data[1] != 3 || cs.Data[2] != -3 {
		t.Errorf("ColSums = %v", cs.Data)
	}
}

func TestAddRowVector(t *testing.T) {
	a := New(2, 3)
	v := NewFromData(1, 3, []float64{1, 2, 3})
	AddRowVector(a, v)
	AddRowVector(a, v)
	want := NewFromData(2, 3, []float64{2, 4, 6, 2, 4, 6})
	if !Equal(a, want, 0) {
		t.Fatalf("AddRowVector = %v", a)
	}
}

func TestMatMulSmall(t *testing.T) {
	a := NewFromData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewFromData(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := MatMul(a, b)
	want := NewFromData(2, 2, []float64{58, 64, 139, 154})
	if !Equal(got, want, 1e-12) {
		t.Fatalf("MatMul = %v, want %v", got, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	r := NewRNG(1)
	a := RandN(5, 5, 1, r)
	id := New(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(i, i, 1)
	}
	if got := MatMul(a, id); !Equal(got, a, 1e-12) {
		t.Fatal("A·I != A")
	}
	if got := MatMul(id, a); !Equal(got, a, 1e-12) {
		t.Fatal("I·A != A")
	}
}

// naiveMatMul is the reference implementation used by the property tests.
func naiveMatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func randomPair(seed uint64, n, k, m int) (*Matrix, *Matrix) {
	r := NewRNG(seed)
	return RandN(n, k, 1, r), RandN(k, m, 1, r)
}

func TestMatMulMatchesNaiveProperty(t *testing.T) {
	f := func(seed uint64, n8, k8, m8 uint8) bool {
		n, k, m := int(n8%16)+1, int(k8%16)+1, int(m8%16)+1
		a, b := randomPair(seed, n, k, m)
		return Equal(MatMul(a, b), naiveMatMul(a, b), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulTransAMatchesExplicitTranspose(t *testing.T) {
	f := func(seed uint64, n8, k8, m8 uint8) bool {
		n, k, m := int(n8%12)+1, int(k8%12)+1, int(m8%12)+1
		r := NewRNG(seed)
		a := RandN(k, n, 1, r)
		b := RandN(k, m, 1, r)
		return Equal(MatMulTransA(a, b), MatMul(Transpose(a), b), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulTransBMatchesExplicitTranspose(t *testing.T) {
	f := func(seed uint64, n8, k8, m8 uint8) bool {
		n, k, m := int(n8%12)+1, int(k8%12)+1, int(m8%12)+1
		r := NewRNG(seed)
		a := RandN(n, k, 1, r)
		b := RandN(m, k, 1, r)
		return Equal(MatMulTransB(a, b), MatMul(a, Transpose(b)), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulParallelPathMatchesNaive(t *testing.T) {
	// Big enough to cross parallelThreshold.
	a, b := randomPair(7, 96, 80, 96)
	if !Equal(MatMul(a, b), naiveMatMul(a, b), 1e-8) {
		t.Fatal("parallel MatMul disagrees with naive result")
	}
}

func TestMatMulTransParallelPaths(t *testing.T) {
	r := NewRNG(11)
	a := RandN(90, 70, 1, r)
	b := RandN(90, 85, 1, r)
	if !Equal(MatMulTransA(a, b), MatMul(Transpose(a), b), 1e-8) {
		t.Fatal("parallel MatMulTransA disagrees")
	}
	c := RandN(90, 70, 1, r)
	d := RandN(85, 70, 1, r)
	if !Equal(MatMulTransB(c, d), MatMul(c, Transpose(d)), 1e-8) {
		t.Fatal("parallel MatMulTransB disagrees")
	}
}

func TestMatVec(t *testing.T) {
	a := NewFromData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	got := MatVec(a, []float64{1, 1, 1})
	if got[0] != 6 || got[1] != 15 {
		t.Fatalf("MatVec = %v", got)
	}
}

func TestMatMulDimPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for inner dim mismatch")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestMatMulAssociativityProperty(t *testing.T) {
	// (A·B)·C == A·(B·C) within float tolerance.
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		a := RandN(4, 5, 1, r)
		b := RandN(5, 6, 1, r)
		c := RandN(6, 3, 1, r)
		return Equal(MatMul(MatMul(a, b), c), MatMul(a, MatMul(b, c)), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulDistributivityProperty(t *testing.T) {
	// A·(B+C) == A·B + A·C.
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		a := RandN(4, 5, 1, r)
		b := RandN(5, 6, 1, r)
		c := RandN(5, 6, 1, r)
		return Equal(MatMul(a, Add(b, c)), Add(MatMul(a, b), MatMul(a, c)), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
