// Package tune derives the cache-blocking parameters of the tensor matmul
// kernels from a hardware model, reusing the hwsim roofline machinery the
// search stack already trusts for accelerator decisions. The derivation is
// run at development time (and pinned by this package's test against
// tensor.MatMulBlockShape) rather than at process start: the block shape
// is a compile-time constant so the kernels stay allocation- and
// branch-free, and a silent host change cannot silently change numerics
// or performance characteristics — the pin test fails loudly instead.
//
// The full derivation, worked with the CI host's numbers, is documented
// in docs/PERFORMANCE.md under "Kernel tuning".
package tune

import (
	"h2onas/internal/hwsim"
)

// HostCaches describes the per-core data-cache capacities the block-shape
// derivation needs. hwsim.Chip models an accelerator's HBM/CMEM split;
// a CPU adds one more level, so the L1 capacity rides alongside the chip
// (whose CMEMCapacity plays the L2 role).
type HostCaches struct {
	L1DBytes int // per-core L1 data cache
	L2Bytes  int // per-core unified L2
}

// HostChip models one core of the CI host CPU in hwsim.Chip terms, so the
// roofline helpers apply unchanged: PeakMXUFLOPS is the scalar FP64
// multiply-add peak (2 FLOPs/cycle — the reference kernels are scalar and
// the accumulation chains serialize FMA-width tricks away), HBMBandwidth
// is the per-core DRAM streaming bandwidth, and CMEM stands in for L2.
// The numbers are the Intel Xeon (Skylake-SP, 2.10 GHz) the benchmarks
// in BENCH_search.json were recorded on.
func HostChip() hwsim.Chip {
	return hwsim.Chip{
		Name:          "xeon-2.1GHz-core",
		PeakMXUFLOPS:  4.2e9,  // 2.1 GHz × 2 scalar FP64 FLOPs/cycle
		PeakVPUFLOPS:  16.8e9, // 4-lane AVX2 (the h2ofast backend)
		HBMBandwidth:  12e9,   // single-core DRAM stream
		HBMCapacity:   16 << 30,
		CMEMCapacity:  2 << 20, // per-core L2
		CMEMBandwidth: 80e9,
	}
}

// HostCacheModel returns the cache capacities of the same host core.
func HostCacheModel() HostCaches {
	return HostCaches{
		L1DBytes: 48 << 10,
		L2Bytes:  2 << 20,
	}
}

// BlockShape derives the matmul k-panel height and j-panel width for a
// host described by chip (DRAM roofline, L2 as CMEMCapacity) and caches.
//
// The j panel keeps the two streaming slabs of the inner axpy — an output
// row segment and a b row segment — simultaneously L1-resident with half
// the cache left for everything else:
//
//	2 · jc · 8 bytes ≤ L1D/2
//
// The k panel then bounds the kc×jc panel of b that is re-read once per
// output row to a quarter of L2, leaving room for the a/out streams:
//
//	kc · jc · 8 bytes ≤ L2/4
//
// The roofline supplies the floor: a k-panel of height kc gives the sweep
// an operational intensity of about kc/8 FLOPs per DRAM byte (per output
// element and panel: 2·kc FLOPs against a 16-byte load+store of the
// element), so kc must be at least 8× the chip's ridge point for the
// blocked sweep to sit on the compute roof. Both results are rounded down
// to powers of two so panel edges land on cache-line-friendly strides.
// BlockShape panics if the cache ceiling falls below the roofline floor —
// on such a host blocking cannot reach the compute roof and the constants
// must be rethought, not silently clamped.
func BlockShape(chip hwsim.Chip, c HostCaches) (kc, jc int) {
	jc = floorPow2(c.L1DBytes / (2 * 2 * 8))
	kc = floorPow2(c.L2Bytes / 4 / (jc * 8))
	if minKC := ceilPow2(int(8 * hwsim.RidgePoint(chip))); kc < minKC {
		panic("tune: L2 capacity bound is below the roofline floor")
	}
	return kc, jc
}

func floorPow2(n int) int {
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p *= 2
	}
	return p
}
