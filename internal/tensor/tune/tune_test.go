package tune

import (
	"testing"

	"h2onas/internal/hwsim"
	"h2onas/internal/tensor"
)

// TestDerivationMatchesKernelConstants pins the compiled-in block shape of
// the tensor kernels to this package's derivation: if either the hardware
// model or the kernel constants drift, this fails and the two must be
// reconciled deliberately (see docs/PERFORMANCE.md "Kernel tuning").
func TestDerivationMatchesKernelConstants(t *testing.T) {
	kc, jc := BlockShape(HostChip(), HostCacheModel())
	gotKC, gotJC := tensor.MatMulBlockShape()
	if kc != gotKC || jc != gotJC {
		t.Fatalf("derived block shape (%d,%d) != kernel constants (%d,%d)", kc, jc, gotKC, gotJC)
	}
}

// TestBlockShapeRespectsBounds checks the derivation's own invariants on
// the host model: both panels are powers of two, the axpy slabs fit in
// half of L1d, the b panel fits in a quarter of L2, and the k panel
// clears the roofline floor with margin.
func TestBlockShapeRespectsBounds(t *testing.T) {
	chip := HostChip()
	c := HostCacheModel()
	kc, jc := BlockShape(chip, c)
	if kc&(kc-1) != 0 || jc&(jc-1) != 0 {
		t.Fatalf("block shape (%d,%d) not powers of two", kc, jc)
	}
	if 2*jc*8 > c.L1DBytes/2 {
		t.Fatalf("jc=%d: axpy slabs %d bytes exceed L1d/2=%d", jc, 2*jc*8, c.L1DBytes/2)
	}
	if kc*jc*8 > c.L2Bytes/4 {
		t.Fatalf("(%d,%d): b panel %d bytes exceeds L2/4=%d", kc, jc, kc*jc*8, c.L2Bytes/4)
	}
	if ridge := hwsim.RidgePoint(chip); float64(kc) < 8*ridge {
		t.Fatalf("kc=%d below roofline floor 8×ridge=%g", kc, 8*ridge)
	}
}

// TestBlockShapeScalesWithCaches sanity-checks the derivation's direction:
// a host with double the caches should never get a smaller panel.
func TestBlockShapeScalesWithCaches(t *testing.T) {
	chip := HostChip()
	small := HostCacheModel()
	big := HostCaches{L1DBytes: small.L1DBytes * 2, L2Bytes: small.L2Bytes * 2}
	kcS, jcS := BlockShape(chip, small)
	kcB, jcB := BlockShape(chip, big)
	if jcB < jcS || kcB*jcB < kcS*jcS {
		t.Fatalf("doubling caches shrank the block: (%d,%d) -> (%d,%d)", kcS, jcS, kcB, jcB)
	}
}
