package vitnet

import (
	"fmt"

	"h2onas/internal/core"
	"h2onas/internal/datapipe"
	"h2onas/internal/nn"
	"h2onas/internal/reward"
	"h2onas/internal/sched"
	"h2onas/internal/space"
	"h2onas/internal/tensor"
)

// Searcher runs the unified single-step parallel search over the pure
// transformer space with a live super-network — the same three-stage step
// as core.Searcher (sample α → quality on fresh data → cross-shard π and W
// updates), against sequence traffic.
type Searcher struct {
	VS     *space.ViTSpace
	Reward *reward.Function
	Perf   core.PerfFunc
	Stream *datapipe.SeqStream
}

// Result is the outcome of a transformer search.
type Result struct {
	Best         space.Assignment
	BestArch     space.ViTArch
	BestPerf     []float64
	FinalQuality float64
	History      []core.StepInfo
	Candidates   []core.Candidate
	ExamplesSeen int64
}

// Search runs the search. The sandwich shard and α-before-W ordering
// behave exactly as in core.Searcher.
func (s *Searcher) Search(cfg core.Config) (*Result, error) {
	if s.VS == nil || s.Reward == nil || s.Perf == nil || s.Stream == nil {
		return nil, fmt.Errorf("vitnet: Searcher requires VS, Reward, Perf and Stream")
	}
	if cfg.Shards <= 0 || cfg.Steps <= 0 || cfg.BatchSize <= 0 {
		return nil, fmt.Errorf("vitnet: non-positive shards/steps/batch in %+v", cfg)
	}
	if cfg.WeightLR <= 0 {
		cfg.WeightLR = 0.003
	}
	rng := tensor.NewRNG(cfg.Seed)
	seqCfg := s.Stream.Config()
	master := New(s.VS, seqCfg.Vocab, seqCfg.SeqLen, rng.Split())
	replicas := make([]*Supernet, cfg.Shards)
	for i := range replicas {
		replicas[i] = master.Replicate(rng.Split())
	}
	// Same core-budget partition as core.Searcher: replicas get a
	// per-shard share, the master (final eval) and the spine get the full
	// budget. Performance-only — any split is bit-identical.
	budget := sched.New(cfg.Workers, cfg.Shards)
	master.SetWorkers(budget.Total())
	for i := range replicas {
		replicas[i].SetWorkers(budget.PerShard())
	}
	strat := core.StrategyFor(&cfg, s.VS.Space)
	opt := nn.NewAdam(cfg.WeightLR)
	spine := nn.NewSpine(master.Params(), opt, 10)
	spine.SetWorkers(budget.Total())
	sm := core.NewSearchMetrics(cfg.Metrics)

	res := &Result{}
	assignments := make([]space.Assignment, cfg.Shards)
	qualities := make([]float64, cfg.Shards)
	batches := make([]*datapipe.SeqBatch, cfg.Shards)
	maxA := core.MaxAssignment(s.VS.Space)

	// Per-replica arenas: steady-state steps recycle all intermediates
	// instead of allocating them. Drained on exit.
	arenas := make([]*tensor.Arena, cfg.Shards)
	for i := range replicas {
		arenas[i] = tensor.NewArena()
		replicas[i].SetArena(arenas[i])
	}
	defer func() {
		for i, a := range arenas {
			replicas[i].SetArena(nil)
			a.Release()
			a.Drain()
		}
	}()

	// Perf is pure; memoize it (see core.MemoizedPerf).
	perfFn := s.Perf
	if mp := core.NewMemoizedPerf(s.Perf, cfg.PerfCacheSize, cfg.Metrics); mp != nil {
		perfFn = mp.Eval
	}
	cands := core.NewCandidateRing(cfg.MaxCandidates)

	// Long-lived shard workers, one per shard for the whole run (see
	// core.Searcher.Search for the memory-ordering argument).
	work := make([]chan int, cfg.Shards)
	stepDone := make(chan struct{}, cfg.Shards)
	for i := range work {
		work[i] = make(chan int, 1)
		go func(i int) {
			for range work[i] {
				shardSpan := sm.ShardTime.Start()
				b := batches[i]
				b.UseForArch()
				loss, dout := replicas[i].Loss(assignments[i], b)
				qualities[i] = 1 - loss/ln2
				b.UseForWeights()
				replicas[i].Backward(dout)
				shardSpan.End()
				stepDone <- struct{}{}
			}
		}(i)
	}
	defer func() {
		for _, w := range work {
			close(w)
		}
	}()

	// Stage-3 spine worker: cross-shard reduce + fused clip+Adam step,
	// overlapped with the coordinator's stage-2 policy update (disjoint
	// state; see core.Searcher.Search). Every replica participates every
	// step — there is no fault seam here — so the param lists are built
	// once.
	replicaParams := make([][]*nn.Param, len(replicas))
	for i, r := range replicas {
		replicaParams[i] = r.Params()
	}
	spineWork := make(chan struct{}, 1)
	spineDone := make(chan struct{}, 1)
	var spineNorm float64
	go func() {
		for range spineWork {
			weightsSpan := sm.WeightsTime.Start()
			spine.Reduce(replicaParams)
			spineNorm = spine.ClipStep()
			weightsSpan.End()
			spineDone <- struct{}{}
		}
	}()
	defer close(spineWork)

	for step := 0; step < cfg.WarmupSteps+cfg.Steps; step++ {
		warmup := step < cfg.WarmupSteps
		stepSpan := sm.StepTime.Start()
		if warmup {
			sm.WarmupSteps.Inc()
			sm.WarmupRemaining.Set(float64(cfg.WarmupSteps - step))
		} else {
			sm.WarmupRemaining.Set(0)
		}
		sampleSpan := sm.SampleTime.Start()
		for i := 0; i < cfg.Shards; i++ {
			sandwich := !cfg.DisableSandwich && i == 0 && cfg.Shards > 1
			if warmup && !cfg.DisableSandwich && i%2 == 0 {
				sandwich = true
			}
			if sandwich {
				assignments[i] = maxA
			} else {
				assignments[i] = strat.Sample(rng, warmup)
			}
			batches[i] = s.Stream.NextBatch(cfg.BatchSize)
		}
		sampleSpan.End()

		fanoutSpan := sm.FanoutTime.Start()
		for i := 0; i < cfg.Shards; i++ {
			work[i] <- step
		}
		for n := 0; n < cfg.Shards; n++ {
			<-stepDone
		}
		fanoutSpan.End()

		// Stage 3 starts on the spine worker before stage 2 runs here.
		spineWork <- struct{}{}

		if !warmup {
			policySpan := sm.PolicyTime.Start()
			first := 0
			if !cfg.DisableSandwich && cfg.Shards > 1 {
				first = 1
			}
			var policySamples []space.Assignment
			var rewards []float64
			for i := first; i < cfg.Shards; i++ {
				perf := perfFn(assignments[i])
				rw := s.Reward.Eval(qualities[i], perf)
				policySamples = append(policySamples, assignments[i])
				rewards = append(rewards, rw)
				cands.Add(core.Candidate{
					Step:       step - cfg.WarmupSteps,
					Assignment: append(space.Assignment(nil), assignments[i]...),
					Quality:    qualities[i],
					Perf:       perf,
					Reward:     rw,
				})
			}
			strat.Update(policySamples, rewards)
			sm.Candidates.Add(int64(len(policySamples)))
			policySpan.End()
			res.History = append(res.History, core.StepInfo{
				Step:       step - cfg.WarmupSteps,
				MeanReward: meanReward(rewards),
				MeanQ:      meanFloat(qualities),
				Entropy:    strat.Entropy(),
				Confidence: strat.Confidence(),
			})
			sm.RecordStep(res.History[len(res.History)-1])
			if cfg.Progress != nil {
				cfg.Progress(res.History[len(res.History)-1])
			}
		}

		// Join stage 3: master weights, optimizer moments and the
		// pre-clip gradient norm are settled after this receive.
		<-spineDone
		sm.GradNorm.Observe(spineNorm)
		stepSpan.End()
	}

	res.Best = strat.Best()
	res.BestArch = s.VS.Decode(res.Best)
	res.BestPerf = perfFn(res.Best)
	res.Candidates = cands.Items()
	final := s.Stream.NextBatch(cfg.BatchSize * 16)
	final.UseForArch()
	res.FinalQuality = master.Quality(res.Best, final)
	res.ExamplesSeen = s.Stream.ExamplesServed()
	sm.Examples.Add(res.ExamplesSeen)
	return res, nil
}

const ln2 = 0.6931471805599453

func meanReward(v []float64) float64 { return meanFloat(v) }

func meanFloat(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}
