// Package vitnet implements the weight-sharing super-network for the pure
// transformer search space (Table 5, Appendix A): token and positional
// embeddings with fine-grained width sharing, per-layer attention and FFN
// slots whose hidden size is masked to any searchable width, shared
// low-rank FFN factors for the rank sweep, searchable activations and
// sequence pooling, and a depth sweep over per-layer slots — the
// transformer counterpart of the DLRM super-network, enabling one-shot
// searches for "pure VIT or transformer based NLP models".
//
// The Primer decision (channel-wise depth convolutions) affects the
// performance graph only; in the trainable super-network it is a no-op,
// as its quality effect is below this substrate's resolution.
package vitnet

import (
	"fmt"
	"math"

	"h2onas/internal/datapipe"
	"h2onas/internal/nn"
	"h2onas/internal/space"
	"h2onas/internal/tensor"
)

// layerSlot is one transformer layer's shared weights.
type layerSlot struct {
	ln0, ln1 *nn.MaskedLayerNorm
	attn     *nn.MaskedAttention
	ffnUp    *nn.LowRankDense // maxHidden → ffnRatio·maxHidden, shared rank factors
	ffnDown  *nn.MaskedDense  // ffnRatio·maxHidden → maxHidden

	// Per-forward caches.
	act *nn.ActivationLayer
}

// blockSlots is one multi-layer transformer block's slots.
type blockSlots struct {
	layers   []*layerSlot
	maxLayer int
}

// Supernet is the weight-sharing transformer super-network.
type Supernet struct {
	VS *space.ViTSpace

	vocab, seqLen, maxHidden int
	ffnRatio                 int

	tokens *nn.Embedding // vocab×maxHidden, fine-grained width sharing
	pos    *nn.Param     // seqLen×maxHidden
	blocks []*blockSlots
	trans  []*nn.MaskedDense // between-block width transitions
	head   *nn.MaskedDense   // maxHidden → 1

	params []*nn.Param

	// arena, when set, owns every forward/backward intermediate; it is
	// released (recycled) at the top of each Forward. One per shard
	// replica — arenas are single-goroutine.
	arena *tensor.Arena

	// Forward tape consumed by Backward.
	lastArch  space.ViTArch
	lastBatch *datapipe.SeqBatch
	tape      []poolCache
	headIn    *tensor.Matrix
	headSeq   int

	// Reused token-index scatter buffers (one []int slot per position).
	flat     [][]int
	flatToks []int
}

// poolCache records a sequence-pooling step for backward.
type poolCache struct {
	inSeq, outSeq, batch, width int
}

// New builds the super-network sized for the largest candidate. vocab and
// seqLen come from the traffic configuration.
func New(vs *space.ViTSpace, vocab, seqLen int, rng *tensor.RNG) *Supernet {
	if vs.Hybrid {
		panic("vitnet: super-network supports the pure transformer space")
	}
	cfg := vs.Config
	maxHidden := maxOption(vs.Space, "tfm0_hidden")
	s := &Supernet{
		VS:        vs,
		vocab:     vocab,
		seqLen:    seqLen,
		maxHidden: maxHidden,
	}
	s.ffnRatio = cfg.Blocks[0].FFNRatio
	if s.ffnRatio <= 0 {
		s.ffnRatio = 4
	}
	s.tokens = nn.NewEmbedding(vocab, maxHidden, rng.Split())
	s.pos = nn.NewParam("pos_embedding", tensor.RandN(seqLen, maxHidden, 0.02, rng.Split()))

	for b := range cfg.Blocks {
		if mh := maxOption(vs.Space, fmt.Sprintf("tfm%d_hidden", b)); mh != maxHidden {
			panic("vitnet: per-block max hidden sizes must agree")
		}
		maxLayers := cfg.Blocks[b].Layers + 3
		blk := &blockSlots{maxLayer: maxLayers}
		for l := 0; l < maxLayers; l++ {
			inner := s.ffnRatio * maxHidden
			slot := &layerSlot{
				ln0:     nn.NewMaskedLayerNorm(maxHidden),
				ln1:     nn.NewMaskedLayerNorm(maxHidden),
				attn:    nn.NewMaskedAttention(maxHidden, rng.Split()),
				ffnUp:   nn.NewLowRankDense(maxHidden, inner, maxHidden, rng.Split()),
				ffnDown: nn.NewMaskedDense(inner, maxHidden, rng.Split()),
			}
			slot.attn.HeadDim = 16
			blk.layers = append(blk.layers, slot)
		}
		s.blocks = append(s.blocks, blk)
		if b > 0 {
			s.trans = append(s.trans, nn.NewMaskedDense(maxHidden, maxHidden, rng.Split()))
		}
	}
	s.head = nn.NewMaskedDense(maxHidden, 1, rng.Split())

	s.params = append(s.params, s.tokens.Params()...)
	s.params = append(s.params, s.pos)
	for _, blk := range s.blocks {
		for _, slot := range blk.layers {
			s.params = append(s.params, slot.ln0.Params()...)
			s.params = append(s.params, slot.attn.Params()...)
			s.params = append(s.params, slot.ln1.Params()...)
			s.params = append(s.params, slot.ffnUp.Params()...)
			s.params = append(s.params, slot.ffnDown.Params()...)
		}
	}
	for _, tr := range s.trans {
		s.params = append(s.params, tr.Params()...)
	}
	s.params = append(s.params, s.head.Params()...)
	return s
}

// Params returns all shared parameters in a stable order.
func (s *Supernet) Params() []*nn.Param { return s.params }

// SetArena threads an arena through the super-network and all its layer
// slots. Every intermediate from a Forward/Backward pass (including the
// Loss gradient) is arena-owned: valid until the next Forward, which
// recycles them. nil reverts to per-pass heap allocation.
func (s *Supernet) SetArena(a *tensor.Arena) {
	s.arena = a
	s.tokens.Arena = a
	for _, blk := range s.blocks {
		for _, slot := range blk.layers {
			slot.ln0.Arena = a
			slot.ln1.Arena = a
			slot.attn.SetArena(a)
			slot.ffnUp.Arena = a
			slot.ffnDown.Arena = a
			if slot.act != nil {
				slot.act.Arena = a
			}
		}
	}
	for _, tr := range s.trans {
		tr.Arena = a
	}
	s.head.Arena = a
}

// SetWorkers threads an intra-pass parallelism bound through every layer
// slot, mirroring SetArena. The bound is one shard's share of the
// search's core budget (sched.Budget); 0 or 1 — the default — keeps the
// historical serial layer loops, and any setting is bit-identical.
func (s *Supernet) SetWorkers(n int) {
	s.tokens.Workers = n
	for _, blk := range s.blocks {
		for _, slot := range blk.layers {
			slot.attn.SetWorkers(n)
			slot.ffnUp.Workers = n
			slot.ffnDown.Workers = n
		}
	}
	for _, tr := range s.trans {
		tr.Workers = n
	}
	s.head.Workers = n
}

// Replicate returns a view sharing parameter values with s but with
// independent gradients and forward caches — one per accelerator shard.
func (s *Supernet) Replicate(rng *tensor.RNG) *Supernet {
	// The structural clone is built with a ZeroRNG: every replica weight
	// is immediately replaced by the master's shared storage, so a real
	// initialization would be thrown away. The rng argument is retained so
	// call sites keep consuming one Split from their stream.
	_ = rng
	r := New(s.VS, s.vocab, s.seqLen, tensor.ZeroRNG())
	for i, p := range r.params {
		p.Value = s.params[i].Value
	}
	return r
}

// Forward runs the sub-network selected by the assignment over the batch
// and returns logits (batch×1).
func (s *Supernet) Forward(a space.Assignment, batch *datapipe.SeqBatch) *tensor.Matrix {
	// Recycle the previous pass's intermediates (no-op without an arena).
	s.arena.Release()
	ar := s.VS.Decode(a)
	s.lastArch = ar
	s.lastBatch = batch
	s.tape = s.tape[:0]

	n := batch.Size()
	seq := s.seqLen
	h := ar.TFMBlocks[0].Hidden

	// Token + positional embeddings at active width h. The single-id bag
	// slots are sub-slices of one reused backing array.
	s.tokens.SetActiveWidth(h)
	if cap(s.flat) < n*seq {
		s.flat = make([][]int, n*seq)
		s.flatToks = make([]int, n*seq)
	}
	flat := s.flat[:n*seq]
	for i, toks := range batch.Tokens {
		for t, tok := range toks {
			s.flatToks[i*seq+t] = tok
			flat[i*seq+t] = s.flatToks[i*seq+t : i*seq+t+1]
		}
	}
	x := s.tokens.Forward(flat)
	for i := 0; i < n; i++ {
		for t := 0; t < seq; t++ {
			row := x.Row(i*seq + t)
			prow := s.pos.Value.Row(t)[:h]
			for j := range row {
				row[j] += prow[j]
			}
		}
	}

	for b, blkArch := range ar.TFMBlocks {
		if b > 0 && blkArch.Hidden != h {
			s.trans[b-1].SetActive(h, blkArch.Hidden)
			x = s.trans[b-1].Forward(x)
			h = blkArch.Hidden
		}
		blk := s.blocks[b]
		layers := blkArch.Layers
		if layers > blk.maxLayer {
			layers = blk.maxLayer
		}
		act := actFromName(blkArch.Act)
		rank := rankFor(blkArch.LowRank, h)
		for l := 0; l < layers; l++ {
			x = s.runLayer(blk.layers[l], x, h, seq, rank, act)
		}
		if blkArch.SeqPool && seq > 1 {
			x, seq = s.pool(x, n, seq, h)
		}
	}

	// Mean over sequence, then the classifier head.
	s.headSeq = seq
	pooled := s.arena.Get(n, h)
	inv := 1 / float64(seq)
	for i := 0; i < n; i++ {
		prow := pooled.Row(i)
		for t := 0; t < seq; t++ {
			row := x.Row(i*seq + t)
			for j := range prow {
				prow[j] += row[j] * inv
			}
		}
	}
	s.headIn = pooled
	s.head.SetActive(h, 1)
	return s.head.Forward(pooled)
}

// runLayer executes one pre-norm transformer layer:
// x ← x + Attn(LN0(x)); x ← x + FFNdown(act(FFNup(LN1(x)))).
func (s *Supernet) runLayer(slot *layerSlot, x *tensor.Matrix, h, seq, rank int, act nn.Activation) *tensor.Matrix {
	slot.ln0.SetActive(h)
	slot.attn.SetActive(h, seq)
	attnOut := slot.attn.Forward(slot.ln0.Forward(x))
	y := s.arena.GetNoZero(x.Rows, x.Cols)
	tensor.AddInto(x, attnOut, y)

	inner := s.ffnRatio * h
	slot.ln1.SetActive(h)
	slot.ffnUp.SetActive(h, inner, rank)
	slot.ffnDown.SetActive(inner, h)
	// The activation layer is pooled per slot; the searchable activation
	// kind can change between passes.
	if slot.act == nil || slot.act.Act != act {
		slot.act = nn.NewActivationLayer(act)
	}
	slot.act.Arena = s.arena
	ffnOut := slot.ffnDown.Forward(slot.act.Forward(slot.ffnUp.Forward(slot.ln1.Forward(y))))
	out := s.arena.GetNoZero(y.Rows, y.Cols)
	tensor.AddInto(y, ffnOut, out)
	return out
}

// pool halves the sequence by averaging adjacent positions.
func (s *Supernet) pool(x *tensor.Matrix, n, seq, h int) (*tensor.Matrix, int) {
	outSeq := seq / 2
	out := s.arena.GetNoZero(n*outSeq, h)
	for i := 0; i < n; i++ {
		for t := 0; t < outSeq; t++ {
			a := x.Row(i*seq + 2*t)
			b := x.Row(i*seq + 2*t + 1)
			orow := out.Row(i*outSeq + t)
			for j := range orow {
				orow[j] = (a[j] + b[j]) / 2
			}
		}
	}
	s.tape = append(s.tape, poolCache{inSeq: seq, outSeq: outSeq, batch: n, width: h})
	return out, outSeq
}

// Backward propagates dLoss/dLogits through the selected sub-network.
func (s *Supernet) Backward(dLogits *tensor.Matrix) {
	if s.lastBatch == nil {
		panic("vitnet: Backward before Forward")
	}
	ar := s.lastArch
	n := s.lastBatch.Size()

	dPooled := s.head.Backward(dLogits)
	h := dPooled.Cols
	seq := s.headSeq
	// Un-pool the mean over sequence.
	grad := s.arena.GetNoZero(n*seq, h)
	inv := 1 / float64(seq)
	for i := 0; i < n; i++ {
		prow := dPooled.Row(i)
		for t := 0; t < seq; t++ {
			row := grad.Row(i*seq + t)
			for j := range row {
				row[j] = prow[j] * inv
			}
		}
	}

	tapeIdx := len(s.tape) - 1
	for b := len(ar.TFMBlocks) - 1; b >= 0; b-- {
		blkArch := ar.TFMBlocks[b]
		if blkArch.SeqPool && tapeIdx >= 0 {
			pc := s.tape[tapeIdx]
			tapeIdx--
			grad, seq = s.unpool(grad, pc)
		}
		blk := s.blocks[b]
		layers := blkArch.Layers
		if layers > blk.maxLayer {
			layers = blk.maxLayer
		}
		for l := layers - 1; l >= 0; l-- {
			grad = s.backLayer(blk.layers[l], grad)
		}
		if b > 0 && ar.TFMBlocks[b-1].Hidden != blkArch.Hidden {
			grad = s.trans[b-1].Backward(grad)
			h = ar.TFMBlocks[b-1].Hidden
		}
	}
	_ = h

	// Positional embedding gradient plus token-table scatter.
	hAct := grad.Cols
	for i := 0; i < n; i++ {
		for t := 0; t < s.seqLen; t++ {
			row := grad.Row(i*s.seqLen + t)
			prow := s.pos.Grad.Row(t)[:hAct]
			for j := range row {
				prow[j] += row[j]
			}
		}
	}
	s.pos.Dirty = true
	s.tokens.Backward(grad)
}

// backLayer inverts runLayer. The FFN branch gradient flows through
// LN1→FFN and adds to the residual path; then the attention branch.
func (s *Supernet) backLayer(slot *layerSlot, grad *tensor.Matrix) *tensor.Matrix {
	dFFN := slot.ffnUp.Backward(slot.act.Backward(slot.ffnDown.Backward(grad)))
	dY := s.arena.GetNoZero(grad.Rows, grad.Cols)
	tensor.AddInto(grad, slot.ln1.Backward(dFFN), dY)
	dAttn := slot.ln0.Backward(slot.attn.Backward(dY))
	out := s.arena.GetNoZero(dY.Rows, dY.Cols)
	tensor.AddInto(dY, dAttn, out)
	return out
}

// unpool inverts the adjacent-pair average.
func (s *Supernet) unpool(grad *tensor.Matrix, pc poolCache) (*tensor.Matrix, int) {
	// Zeroed: with an odd input sequence the dropped trailing position
	// receives no gradient, and that zero must be explicit.
	out := s.arena.Get(pc.batch*pc.inSeq, pc.width)
	for i := 0; i < pc.batch; i++ {
		for t := 0; t < pc.outSeq; t++ {
			g := grad.Row(i*pc.outSeq + t)
			a := out.Row(i*pc.inSeq + 2*t)
			b := out.Row(i*pc.inSeq + 2*t + 1)
			for j := range g {
				a[j] = g[j] / 2
				b[j] = g[j] / 2
			}
		}
	}
	return out, pc.inSeq
}

// Loss runs Forward and returns the BCE loss and logits gradient. With
// an arena set, the gradient is arena-owned: valid through Backward,
// recycled by the next Forward.
func (s *Supernet) Loss(a space.Assignment, batch *datapipe.SeqBatch) (float64, *tensor.Matrix) {
	logits := s.Forward(a, batch)
	grad := s.arena.GetNoZero(logits.Rows, logits.Cols)
	return nn.BCEWithLogits{}.EvalInto(logits, batch.Labels, grad), grad
}

// Quality is 1 − logloss/ln 2 on the batch (forward only).
func (s *Supernet) Quality(a space.Assignment, batch *datapipe.SeqBatch) float64 {
	loss, _ := s.Loss(a, batch)
	return 1 - loss/math.Ln2
}

func actFromName(name string) nn.Activation {
	switch name {
	case "relu":
		return nn.ReLU
	case "swish":
		return nn.Swish
	case "gelu":
		return nn.GeLU
	case "squared_relu":
		return nn.SquaredReLU
	default:
		return nn.GeLU
	}
}

func rankFor(frac float64, h int) int {
	if frac >= 1 {
		return h
	}
	r := int(math.Round(frac * float64(h)))
	if r < 8 {
		r = 8
	}
	if r > h {
		r = h
	}
	return r
}

func maxOption(sp *space.Space, name string) int {
	d := sp.Decisions[sp.Lookup(name)]
	best := d.Values[0]
	for _, v := range d.Values {
		if v > best {
			best = v
		}
	}
	return int(best)
}
