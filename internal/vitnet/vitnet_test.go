package vitnet

import (
	"math"
	"testing"

	"h2onas/internal/core"
	"h2onas/internal/datapipe"
	"h2onas/internal/hwsim"
	"h2onas/internal/nn"
	"h2onas/internal/reward"
	"h2onas/internal/space"
	"h2onas/internal/tensor"
)

func newSmall(seed uint64) (*space.ViTSpace, *Supernet, *datapipe.SeqStream) {
	vs := space.NewTransformerSpace(space.SmallViTConfig())
	cfg := datapipe.DefaultSeqConfig()
	sn := New(vs, cfg.Vocab, cfg.SeqLen, tensor.NewRNG(seed))
	return vs, sn, datapipe.NewSeqStream(cfg, seed)
}

func randomAssignment(vs *space.ViTSpace, rng *tensor.RNG) space.Assignment {
	a := make(space.Assignment, len(vs.Space.Decisions))
	for i, d := range vs.Space.Decisions {
		a[i] = rng.Intn(d.Arity())
	}
	return a
}

func TestForwardShape(t *testing.T) {
	vs, sn, stream := newSmall(1)
	b := stream.NextBatch(8)
	logits := sn.Forward(vs.BaselineAssignment(), b)
	if logits.Rows != 8 || logits.Cols != 1 {
		t.Fatalf("logits shape %dx%d", logits.Rows, logits.Cols)
	}
}

func TestForwardAnyCandidate(t *testing.T) {
	vs, sn, stream := newSmall(2)
	rng := tensor.NewRNG(3)
	b := stream.NextBatch(4)
	for trial := 0; trial < 40; trial++ {
		a := randomAssignment(vs, rng)
		logits := sn.Forward(a, b)
		for _, v := range logits.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("trial %d: non-finite logit for %s", trial, vs.Space.Describe(a))
			}
		}
	}
}

func TestBackwardAnyCandidateFinite(t *testing.T) {
	vs, sn, stream := newSmall(4)
	rng := tensor.NewRNG(5)
	for trial := 0; trial < 15; trial++ {
		a := randomAssignment(vs, rng)
		b := stream.NextBatch(4)
		nn.ZeroGrads(sn.Params())
		_, dout := sn.Loss(a, b)
		sn.Backward(dout)
		for _, p := range sn.Params() {
			for _, g := range p.Grad.Data {
				if math.IsNaN(g) || math.IsInf(g, 0) {
					t.Fatalf("trial %d: non-finite grad in %s", trial, p.Name)
				}
			}
		}
	}
}

func TestGradCheckThroughTransformerSupernet(t *testing.T) {
	vs, sn, stream := newSmall(6)
	rng := tensor.NewRNG(7)
	a := randomAssignment(vs, rng)
	b := stream.NextBatch(3)

	nn.ZeroGrads(sn.Params())
	_, dout := sn.Loss(a, b)
	sn.Backward(dout)

	const eps = 1e-6
	checked := 0
	for _, p := range sn.Params() {
		if tensor.MaxAbs(p.Grad) == 0 {
			continue
		}
		idx, best := 0, 0.0
		for i, g := range p.Grad.Data {
			if math.Abs(g) > best {
				idx, best = i, math.Abs(g)
			}
		}
		orig := p.Value.Data[idx]
		p.Value.Data[idx] = orig + eps
		up, _ := sn.Loss(a, b)
		p.Value.Data[idx] = orig - eps
		down, _ := sn.Loss(a, b)
		p.Value.Data[idx] = orig
		num := (up - down) / (2 * eps)
		if math.Abs(num-p.Grad.Data[idx]) > 2e-4*math.Max(1, math.Abs(num)) {
			t.Fatalf("param %s grad[%d]: analytic %v vs numeric %v", p.Name, idx, p.Grad.Data[idx], num)
		}
		checked++
		if checked >= 12 {
			break
		}
	}
	if checked < 6 {
		t.Fatalf("only %d params received gradient", checked)
	}
}

func TestTrainingImprovesQuality(t *testing.T) {
	vs, sn, stream := newSmall(8)
	a := vs.BaselineAssignment()
	opt := nn.NewAdam(0.003)
	before := sn.Quality(a, stream.NextBatch(512))
	for step := 0; step < 150; step++ {
		b := stream.NextBatch(64)
		nn.ZeroGrads(sn.Params())
		_, dout := sn.Loss(a, b)
		sn.Backward(dout)
		nn.ClipGradNorm(sn.Params(), 10)
		opt.Step(sn.Params())
	}
	after := sn.Quality(a, stream.NextBatch(512))
	if after <= before+0.03 {
		t.Fatalf("training did not improve quality: %v → %v", before, after)
	}
}

func TestReplicateSharesValues(t *testing.T) {
	_, sn, _ := newSmall(9)
	rep := sn.Replicate(tensor.NewRNG(10))
	sn.Params()[0].Value.Data[0] = 99
	if rep.Params()[0].Value.Data[0] != 99 {
		t.Fatal("replica must alias parameter values")
	}
}

func TestSeqStreamProperties(t *testing.T) {
	s := datapipe.NewSeqStream(datapipe.DefaultSeqConfig(), 1)
	b := s.NextBatch(64)
	if b.Size() != 64 || len(b.Tokens[0]) != 8 {
		t.Fatalf("batch shape wrong")
	}
	for _, toks := range b.Tokens {
		for _, tok := range toks {
			if tok < 0 || tok >= 64 {
				t.Fatalf("token %d out of vocab", tok)
			}
		}
	}
	var pos float64
	big := s.NextBatch(4000)
	for _, y := range big.Labels.Data {
		pos += y
	}
	if frac := pos / 4000; frac < 0.2 || frac > 0.8 {
		t.Fatalf("labels too skewed: %v", frac)
	}
	// Ground truth deterministic.
	if s.PairEffect(3, 7) != s.PairEffect(3, 7) {
		t.Fatal("pair effect must be deterministic")
	}
}

func TestSeqBatchOrdering(t *testing.T) {
	s := datapipe.NewSeqStream(datapipe.DefaultSeqConfig(), 2)
	b := s.NextBatch(4)
	defer func() {
		if recover() == nil {
			t.Fatal("weights before arch must panic")
		}
	}()
	b.UseForWeights()
}

func TestTransformerSearchEndToEnd(t *testing.T) {
	vs := space.NewTransformerSpace(space.SmallViTConfig())
	chip := hwsim.TPUv4()
	perf := func(a space.Assignment) []float64 {
		g := vs.Graph(vs.Decode(a))
		r := hwsim.Simulate(g, chip, hwsim.Options{Mode: hwsim.Training, Chips: 8})
		return []float64{r.StepTime}
	}
	base := perf(vs.BaselineAssignment())
	rw := reward.MustNew(reward.ReLU,
		reward.Objective{Name: "train_step_time", Target: base[0], Beta: -2})
	s := &Searcher{
		VS:     vs,
		Reward: rw,
		Perf:   perf,
		Stream: datapipe.NewSeqStream(datapipe.DefaultSeqConfig(), 11),
	}
	res, err := s.Search(core.Config{
		Shards: 2, Steps: 25, BatchSize: 16, WarmupSteps: 5, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := vs.Space.Validate(res.Best); err != nil {
		t.Fatalf("best invalid: %v", err)
	}
	if len(res.History) != 25 {
		t.Fatalf("history %d", len(res.History))
	}
	if res.BestPerf[0] <= 0 {
		t.Fatalf("BestPerf %v", res.BestPerf)
	}
	if res.ExamplesSeen <= 0 {
		t.Fatal("no traffic consumed")
	}
}

func TestSearchValidates(t *testing.T) {
	s := &Searcher{}
	if _, err := s.Search(core.Config{Shards: 1, Steps: 1, BatchSize: 1}); err == nil {
		t.Fatal("incomplete searcher must be rejected")
	}
}
