package h2onas

import (
	"io"

	"h2onas/internal/controller"
	"h2onas/internal/core"
	"h2onas/internal/datapipe"
	"h2onas/internal/perfmodel"
	"h2onas/internal/reward"
	"h2onas/internal/space"
	"h2onas/internal/vitnet"
)

// Transformer search (Appendix A: the transformer space "can be used in
// isolation to search for pure VIT or transformer based NLP models").
type (
	// SeqConfig parameterizes the synthetic sequence traffic.
	SeqConfig = datapipe.SeqConfig
	// SeqStream is an endless use-once sequence-example stream.
	SeqStream = datapipe.SeqStream
	// TransformerSearcher runs the one-shot transformer search.
	TransformerSearcher = vitnet.Searcher
	// TransformerResult is its outcome.
	TransformerResult = vitnet.Result
	// TransformerSupernet is the weight-sharing transformer super-network.
	TransformerSupernet = vitnet.Supernet
)

var (
	// DefaultSeqConfig matches the small transformer search config.
	DefaultSeqConfig = datapipe.DefaultSeqConfig
	// NewSeqStream returns a seeded sequence traffic stream.
	NewSeqStream = datapipe.NewSeqStream
	// SmallViTConfig is the quickly-searchable transformer baseline.
	SmallViTConfig = space.SmallViTConfig
	// NewTransformerSupernet builds the transformer super-network.
	NewTransformerSupernet = vitnet.New
)

// SearchTransformer runs the one-shot transformer search end to end: it
// builds the pure transformer space over the model baseline, opens a
// sequence traffic stream, constructs a simulator-backed step-time
// objective with the target relative to the baseline architecture, and
// runs the unified single-step parallel search.
func SearchTransformer(model ViTConfig, traffic SeqConfig, chip Chip,
	kind RewardKind, latencyTargetFactor float64, opts SearchConfig) (*TransformerResult, error) {

	vs := space.NewTransformerSpace(model)
	perf := func(a space.Assignment) []float64 {
		g := vs.Graph(vs.Decode(a))
		r := Simulate(g, chip, SimOptions{Mode: Training, Chips: 8})
		return []float64{r.StepTime}
	}
	base := perf(vs.BaselineAssignment())
	rw, err := reward.New(kind,
		reward.Objective{Name: "train_step_time", Target: base[0] * latencyTargetFactor, Beta: -2})
	if err != nil {
		return nil, err
	}
	s := &vitnet.Searcher{
		VS:     vs,
		Reward: rw,
		Perf:   perf,
		Stream: datapipe.NewSeqStream(traffic, opts.Seed),
	}
	return s.Search(opts)
}

// Multi-trial baselines (the Section 2.1 taxonomy).
type (
	// AnalyticEvaluator scores candidates without training.
	AnalyticEvaluator = core.AnalyticEvaluator
	// EvolutionConfig controls regularized evolution.
	EvolutionConfig = core.EvolutionConfig
)

var (
	// RandomSearch evaluates uniform-random candidates.
	RandomSearch = core.RandomSearch
	// EvolutionSearch runs regularized (aging) evolution.
	EvolutionSearch = core.EvolutionSearch
)

// LoadPerfModel reads a performance model saved with PerfModel.Save —
// pre-training is the expensive phase, so pre-trained models are reusable
// artifacts per (search space, hardware) pair.
func LoadPerfModel(r io.Reader) (*PerfModel, error) { return perfmodel.Load(r) }

// LoadPolicy reads a search policy saved with Policy.Save, validated
// against the space it was trained on.
var LoadPolicy = controller.LoadPolicy

// Policy is the RL controller's distribution over architectures.
type Policy = controller.Policy
