package h2onas

import (
	"h2onas/internal/models"
	"h2onas/internal/quality"
)

// Model zoo (Section 7.1): the open-sourced CoAtNet-H and EfficientNet-H
// families with their baselines, the Figure 8 DLRM pair, and the Figure 10
// production population.
type (
	// CoAtNetSpec is one CoAtNet-style hybrid model.
	CoAtNetSpec = models.CoAtNetSpec
	// ENetSpec is one EfficientNet-style convolutional model.
	ENetSpec = models.ENetSpec
	// ProductionModel is one entry of the production fleet.
	ProductionModel = models.ProductionModel
)

var (
	// CoAtNet returns baseline variant i (0–5).
	CoAtNet = models.CoAtNet
	// CoAtNetH returns the H₂O-NAS-optimized variant i.
	CoAtNetH = models.CoAtNetH
	// EfficientNetX returns baseline variant i (B0–B7).
	EfficientNetX = models.EfficientNetX
	// EfficientNetH returns the H₂O-NAS-optimized variant i.
	EfficientNetH = models.EfficientNetH
	// BaselineDLRM returns the Figure 8 baseline architecture.
	BaselineDLRM = models.BaselineDLRM
	// DLRMH returns the Figure 8 optimized architecture.
	DLRMH = models.DLRMH
	// ProductionShapeDLRMConfig is the Figure 8 baseline configuration.
	ProductionShapeDLRMConfig = models.ProductionShapeDLRMConfig
	// ProductionFleet returns the Figure 10 model population.
	ProductionFleet = models.ProductionFleet
)

// Accuracy model (the calibrated substitute for ImageNet/JFT training).
type (
	// VisionTraits are the accuracy model's inputs.
	VisionTraits = quality.Traits
	// Dataset identifies the pre-training corpus.
	Dataset = quality.Dataset
)

const (
	// ImageNet1K is the small-data regime.
	ImageNet1K = quality.ImageNet1K
	// ImageNet21K is the medium-data regime.
	ImageNet21K = quality.ImageNet21K
	// JFT300M is the large-data regime.
	JFT300M = quality.JFT300M
)

// VisionAccuracy returns the calibrated top-1 accuracy for traits on a
// dataset.
var VisionAccuracy = quality.Accuracy
